// Repeated-measurement statistics (mean ± 95% CI) and the action-latency
// OFLOPS module.
#include <gtest/gtest.h>

#include <cmath>

#include "osnt/common/random.hpp"
#include "osnt/core/repeat.hpp"
#include "osnt/oflops/action_latency.hpp"
#include "osnt/oflops/context.hpp"

namespace osnt {
namespace {

/// The experiments here are phrased as core::Trial via scalar_trial —
/// the double(seed) compatibility overload is gone.
core::Trial seeded(std::function<double(std::uint64_t)> fn) {
  return core::scalar_trial(
      [fn = std::move(fn)](const core::TrialPoint& p) { return fn(p.seed); });
}

TEST(Repeat, ConstantTrialHasZeroCi) {
  const auto r = core::run_repeated(seeded([](std::uint64_t) { return 5.0; }), 10);
  EXPECT_DOUBLE_EQ(r.mean, 5.0);
  EXPECT_DOUBLE_EQ(r.stddev, 0.0);
  EXPECT_DOUBLE_EQ(r.ci95_half, 0.0);
  EXPECT_EQ(r.values.size(), 10u);
}

TEST(Repeat, SeedsArePassedInOrder) {
  std::vector<std::uint64_t> seeds;
  (void)core::run_repeated(seeded([&](std::uint64_t s) {
                             seeds.push_back(s);
                             return 0.0;
                           }),
                           4);
  EXPECT_EQ(seeds, (std::vector<std::uint64_t>{1, 2, 3, 4}));
}

TEST(Repeat, CiCoversTrueMeanUsually) {
  // Gaussian trials around 100: the 95% CI should contain 100 in the
  // vast majority of meta-trials.
  Rng meta{5};
  int covered = 0;
  const int meta_trials = 200;
  for (int m = 0; m < meta_trials; ++m) {
    Rng local{meta()};
    const auto r = core::run_repeated(
        seeded([&](std::uint64_t) { return local.normal(100.0, 10.0); }), 10);
    if (r.lo() <= 100.0 && 100.0 <= r.hi()) ++covered;
  }
  EXPECT_GT(covered, meta_trials * 0.88);  // ~95% nominal, slack for luck
}

TEST(Repeat, TTableSane) {
  EXPECT_NEAR(core::t_critical_95(2), 12.706, 1e-3);    // df=1
  EXPECT_NEAR(core::t_critical_95(10), 2.262, 1e-3);    // df=9
  EXPECT_NEAR(core::t_critical_95(31), 2.042, 1e-3);    // df=30
  EXPECT_NEAR(core::t_critical_95(1000), 1.96, 3e-3);   // near-normal
  EXPECT_EQ(core::t_critical_95(1), 0.0);
}

TEST(Repeat, TTableNoJumpPast30) {
  // The table used to fall off a cliff at df=30 (2.042 → 1.96). The
  // interpolated tail must leave the boundary smoothly...
  const double at30 = core::t_critical_95(31);
  const double at31 = core::t_critical_95(32);
  EXPECT_NEAR(at30, 2.042, 1e-9);
  EXPECT_LT(at31, at30);
  EXPECT_GT(at31, 2.030);  // a step of ~0.003, not 0.08
  // ...pass through the standard anchor rows...
  EXPECT_NEAR(core::t_critical_95(41), 2.021, 1e-3);   // df=40
  EXPECT_NEAR(core::t_critical_95(61), 2.000, 1e-3);   // df=60
  EXPECT_NEAR(core::t_critical_95(121), 1.980, 1e-3);  // df=120
  // ...decrease monotonically...
  for (std::size_t n = 3; n <= 200; ++n)
    EXPECT_LE(core::t_critical_95(n), core::t_critical_95(n - 1)) << n;
  // ...and converge to the normal limit from above.
  EXPECT_GT(core::t_critical_95(500), 1.96);
  EXPECT_NEAR(core::t_critical_95(100000), 1.96, 1e-4);
}

TEST(Repeat, SeedIsolatedTrialIsReproducible) {
  // Seed-isolated experiments summarize identically run to run — the
  // property the deleted double(seed) compatibility overload used to be
  // tested against.
  const auto trial = core::scalar_trial([](const core::TrialPoint& p) {
    Rng rng{p.seed};
    return rng.normal(100.0, 10.0);
  });
  const auto first = core::run_repeated(trial, 12);
  const auto again = core::run_repeated(trial, 12);
  EXPECT_EQ(first.values, again.values);
  EXPECT_EQ(first.mean, again.mean);
  EXPECT_EQ(first.ci95_half, again.ci95_half);
}

TEST(Repeat, ZeroRepetitionsThrows) {
  EXPECT_THROW(
      (void)core::run_repeated(seeded([](std::uint64_t) { return 0.0; }), 0),
      std::invalid_argument);
}

TEST(Repeat, RelativeCi) {
  Rng rng{9};
  const auto r = core::run_repeated(
      seeded([&](std::uint64_t) { return rng.normal(50.0, 5.0); }), 20);
  EXPECT_GT(r.relative_ci(), 0.0);
  EXPECT_LT(r.relative_ci(), 0.2);
}

// ------------------------------------------------- action latency module

TEST(ActionLatency, SlowPathRewriteShowsUp) {
  dut::OpenFlowSwitchConfig sw_cfg;
  sw_cfg.action_modify_latency = 20 * kPicosPerMicro;  // slow-path switch
  sw_cfg.latency_jitter_ns = 0;
  oflops::Testbed tb{sw_cfg};
  oflops::ActionLatencyConfig cfg;
  cfg.samples_per_mode = 50;
  oflops::ActionLatencyModule mod{cfg};
  const auto rep = tb.ctx.run(mod, 120 * kPicosPerSec);

  const SampleSet* plain = nullptr;
  const SampleSet* rewrite = nullptr;
  double overhead = -1;
  for (const auto& [name, d] : rep.distributions) {
    if (name == "forward_only_ns") plain = &d;
    if (name == "vlan_rewrite_ns") rewrite = &d;
  }
  for (const auto& m : rep.scalars)
    if (m.name == "action_overhead_ns") overhead = m.value;
  ASSERT_NE(plain, nullptr);
  ASSERT_NE(rewrite, nullptr);
  EXPECT_EQ(plain->count(), 50u);
  EXPECT_EQ(rewrite->count(), 50u);
  // The 20 µs slow-path cost dominates the measured overhead.
  EXPECT_NEAR(overhead, 20'000.0, 1'000.0);
}

TEST(ActionLatency, FastRewriteIsCheap) {
  dut::OpenFlowSwitchConfig sw_cfg;
  sw_cfg.action_modify_latency = 50 * kPicosPerNano;  // pipeline rewrite
  sw_cfg.latency_jitter_ns = 0;
  oflops::Testbed tb{sw_cfg};
  oflops::ActionLatencyConfig cfg;
  cfg.samples_per_mode = 30;
  oflops::ActionLatencyModule mod{cfg};
  const auto rep = tb.ctx.run(mod, 120 * kPicosPerSec);
  for (const auto& m : rep.scalars) {
    if (m.name == "action_overhead_ns") {
      EXPECT_LT(m.value, 500.0);
      EXPECT_GT(m.value, 0.0);
    }
  }
}

}  // namespace
}  // namespace osnt
