// SNMP agent: response latency, snapshot staleness, unknown OIDs.
#include <gtest/gtest.h>

#include "osnt/dut/snmp.hpp"

namespace osnt::dut {
namespace {

TEST(Snmp, RespondsAfterLatency) {
  sim::Engine eng;
  SnmpConfig cfg;
  cfg.response_latency = 5 * kPicosPerMilli;
  cfg.response_jitter_ms = 0;
  SnmpAgent agent{eng, cfg};
  agent.register_counter("x", [] { return 42u; });
  Picos answered = -1;
  std::uint64_t value = 0;
  agent.get("x", [&](std::string, std::uint64_t v, Picos t) {
    value = v;
    answered = t;
  });
  eng.run();
  EXPECT_EQ(value, 42u);
  EXPECT_EQ(answered, 5 * kPicosPerMilli);
  EXPECT_EQ(agent.polls_served(), 1u);
}

TEST(Snmp, SnapshotsAreStaleWithinRefreshWindow) {
  sim::Engine eng;
  SnmpConfig cfg;
  cfg.refresh_interval = kPicosPerSec;
  cfg.response_jitter_ms = 0;
  SnmpAgent agent{eng, cfg};
  std::uint64_t live = 1;
  agent.register_counter("c", [&] { return live; });

  std::vector<std::uint64_t> observed;
  auto poll = [&] {
    agent.get("c", [&](std::string, std::uint64_t v, Picos) {
      observed.push_back(v);
    });
  };
  // First poll at t=0 snapshots live=1.
  poll();
  eng.run();
  // Counter changes, but a poll within the same refresh window still
  // sees the old snapshot.
  live = 100;
  eng.schedule_at(500 * kPicosPerMilli, poll);
  eng.run();
  // After the refresh boundary the new value is visible.
  eng.schedule_at(1500 * kPicosPerMilli, poll);
  eng.run();
  ASSERT_EQ(observed.size(), 3u);
  EXPECT_EQ(observed[0], 1u);
  EXPECT_EQ(observed[1], 1u);    // stale!
  EXPECT_EQ(observed[2], 100u);  // refreshed
}

TEST(Snmp, UnknownOidAnswersZero) {
  sim::Engine eng;
  SnmpAgent agent{eng};
  std::uint64_t value = 99;
  agent.get("no.such.oid", [&](std::string, std::uint64_t v, Picos) {
    value = v;
  });
  eng.run();
  EXPECT_EQ(value, 0u);
}

TEST(Snmp, JitterVariesResponseTimes) {
  sim::Engine eng;
  SnmpConfig cfg;
  cfg.response_jitter_ms = 2.0;
  SnmpAgent agent{eng, cfg};
  agent.register_counter("x", [] { return 1u; });
  std::vector<Picos> times;
  for (int i = 0; i < 20; ++i)
    agent.get("x", [&](std::string, std::uint64_t, Picos t) {
      times.push_back(t);
    });
  eng.run();
  ASSERT_EQ(times.size(), 20u);
  // Not all identical (jitter applied per poll).
  bool varied = false;
  for (std::size_t i = 1; i < times.size(); ++i)
    if (times[i] - times[0] != static_cast<Picos>(i) * 0) varied |= times[i] != times[0];
  EXPECT_TRUE(varied);
}

}  // namespace
}  // namespace osnt::dut
