// osnt::burst — schedule math for each pattern (period tiling, pulse
// sizing, Pareto seeding, volley shapes), batched-vs-naive emission
// equivalence on the wire, the workload/topology integration with its
// did-you-mean error paths, the BurstEnvelopeGap synth bridge, and the
// headline determinism claim: an amplification-DDoS topology is
// byte-identical under kSimOnly telemetry — including the --series-out
// trajectory — at any --jobs value.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "osnt/burst/pattern.hpp"
#include "osnt/burst/schedule.hpp"
#include "osnt/burst/source.hpp"
#include "osnt/core/runner.hpp"
#include "osnt/gen/models.hpp"
#include "osnt/gen/source.hpp"
#include "osnt/gen/synth.hpp"
#include "osnt/gen/template_gen.hpp"
#include "osnt/graph/blocks.hpp"
#include "osnt/graph/graph.hpp"
#include "osnt/graph/topology.hpp"
#include "osnt/net/parser.hpp"
#include "osnt/sim/engine.hpp"
#include "osnt/telemetry/registry.hpp"
#include "osnt/telemetry/series.hpp"

namespace osnt {
namespace {

using burst::BurstError;
using burst::BurstSchedule;
using burst::Pattern;
using burst::PatternConfig;

// 64 B + 20 B preamble/IFG at 10G = 67.2 ns per slot; the tests below
// lean on this exact figure, so pin it once.
constexpr Picos kSlot64At10G = 67'200;

PatternConfig base_config(Pattern p) {
  PatternConfig cfg;
  cfg.pattern = p;
  cfg.rate_gbps = 10.0;
  cfg.frame_size = 64;
  return cfg;
}

// ------------------------------------------------------------ vocabulary

TEST(Burst, PatternNamesRoundTrip) {
  const auto& names = burst::known_patterns();
  ASSERT_EQ(names.size(), 4u);
  for (const auto& n : names) {
    EXPECT_EQ(burst::pattern_name(burst::pattern_from_name(n)), n);
  }
  EXPECT_THROW((void)burst::pattern_from_name("sawtooth"), BurstError);
}

TEST(Burst, ValidateNamesTheOffendingField) {
  auto expect_rejects = [](PatternConfig cfg, const std::string& field) {
    try {
      cfg.validate();
      ADD_FAILURE() << "expected BurstError about " << field;
    } catch (const BurstError& e) {
      EXPECT_NE(std::string(e.what()).find(field), std::string::npos)
          << e.what();
    }
  };
  PatternConfig cfg = base_config(Pattern::kOnOff);
  cfg.frame_size = 32;
  expect_rejects(cfg, "frame_size");

  cfg = base_config(Pattern::kOnOff);
  cfg.duty = 0.0;
  expect_rejects(cfg, "duty");

  cfg = base_config(Pattern::kHeavyTail);
  cfg.alpha = 1.0;  // Pareto mean diverges at alpha <= 1
  expect_rejects(cfg, "alpha");

  cfg = base_config(Pattern::kAmplification);
  cfg.amp_factor = 0.5;  // an "amplifier" that shrinks is a config error
  expect_rejects(cfg, "amp_factor");

  cfg = base_config(Pattern::kAmplification);
  cfg.attackers = 0;
  expect_rejects(cfg, "attackers");
}

// --------------------------------------------------------- schedule math

TEST(Burst, OnOffTilesThePeriodGrid) {
  PatternConfig cfg = base_config(Pattern::kOnOff);
  cfg.period = 100 * kPicosPerMicro;
  cfg.duty = 0.5;
  const BurstSchedule s{cfg, kPicosPerMilli};

  EXPECT_EQ(cfg.slot(), kSlot64At10G);
  // 50 us on-window / 67.2 ns slot = 744 whole frames per burst.
  constexpr std::size_t kPerBurst = 744;
  ASSERT_EQ(s.bursts().size(), 10u);  // 1 ms / 100 us
  for (std::size_t i = 0; i < s.bursts().size(); ++i) {
    EXPECT_EQ(s.bursts()[i].start, static_cast<Picos>(i) * cfg.period);
    EXPECT_EQ(s.bursts()[i].count, kPerBurst);
  }
  EXPECT_EQ(s.total_frames(), 10 * kPerBurst);
  EXPECT_EQ(s.total_wire_bytes(), 10u * kPerBurst * 64u);
  // Back-to-back departures: offset i is exactly i slots into the burst.
  for (std::size_t i = 0; i < kPerBurst; ++i) {
    EXPECT_EQ(s.offsets()[i], static_cast<Picos>(i) * kSlot64At10G);
  }
  EXPECT_TRUE(std::all_of(s.lengths().begin(), s.lengths().end(),
                          [](std::uint16_t l) { return l == 64; }));
  EXPECT_TRUE(std::all_of(s.flow_ids().begin(), s.flow_ids().end(),
                          [&](std::uint32_t f) { return f < cfg.flows; }));
}

TEST(Burst, SliverDutyStillEmitsOneFramePerPeriod) {
  PatternConfig cfg = base_config(Pattern::kOnOff);
  cfg.period = 100 * kPicosPerMicro;
  cfg.duty = 1e-6;  // on-window shorter than one slot
  const BurstSchedule s{cfg, kPicosPerMilli};
  ASSERT_EQ(s.bursts().size(), 10u);
  for (const auto& b : s.bursts()) EXPECT_EQ(b.count, 1u);
}

TEST(Burst, StrobePulsesAndOverrunGuard) {
  PatternConfig cfg = base_config(Pattern::kStrobe);
  cfg.period = 10 * kPicosPerMicro;
  cfg.pulse_frames = 32;
  const BurstSchedule ok{cfg, 100 * kPicosPerMicro};
  ASSERT_EQ(ok.bursts().size(), 10u);
  for (const auto& b : ok.bursts()) EXPECT_EQ(b.count, 32u);

  // A 1 us period only fits ~14 back-to-back 64 B slots at 10G: a 32-frame
  // pulse overruns into the next period and must be rejected, not wrapped.
  cfg.period = kPicosPerMicro;
  try {
    const BurstSchedule bad{cfg, 100 * kPicosPerMicro};
    ADD_FAILURE() << "expected overrun BurstError";
  } catch (const BurstError& e) {
    EXPECT_NE(std::string(e.what()).find("overruns its period"),
              std::string::npos)
        << e.what();
  }
}

TEST(Burst, HeavyTailIsSeededAndBounded) {
  PatternConfig cfg = base_config(Pattern::kHeavyTail);
  cfg.seed = 42;
  const BurstSchedule a{cfg, kPicosPerMilli};
  const BurstSchedule b{cfg, kPicosPerMilli};
  ASSERT_GT(a.bursts().size(), 1u);
  EXPECT_EQ(a.total_frames(), b.total_frames());
  EXPECT_EQ(a.offsets(), b.offsets());
  EXPECT_EQ(a.flow_ids(), b.flow_ids());
  for (std::size_t i = 0; i < a.bursts().size(); ++i) {
    EXPECT_EQ(a.bursts()[i].start, b.bursts()[i].start);
    EXPECT_GE(a.bursts()[i].count, 1u);  // quantized up to a whole frame
  }

  cfg.seed = 43;
  const BurstSchedule c{cfg, kPicosPerMilli};
  const bool same_shape = a.bursts().size() == c.bursts().size() &&
                          a.total_frames() == c.total_frames();
  EXPECT_FALSE(same_shape) << "independent seeds drew identical schedules";
}

TEST(Burst, AmplificationVolleysShareOneReflector) {
  PatternConfig cfg = base_config(Pattern::kAmplification);
  cfg.period = 100 * kPicosPerMicro;
  cfg.duty = 0.5;
  cfg.attackers = 16;
  cfg.request_size = 64;
  cfg.amp_factor = 10.0;
  const BurstSchedule s{cfg, 200 * kPicosPerMicro};

  // One volley = ceil(10 x 64 / 64) = 10 response frames; 74 volleys of
  // 672 ns air tile each 50 us on-window, over two periods.
  ASSERT_EQ(s.bursts().size(), 148u);
  std::set<std::uint32_t> reflectors;
  for (const auto& v : s.bursts()) {
    EXPECT_EQ(v.count, 10u);
    const std::uint32_t flow = s.flow_ids()[v.first];
    EXPECT_LT(flow, cfg.attackers);
    for (std::size_t i = 0; i < v.count; ++i) {
      // The whole volley is one reflected response: a single spoofed
      // source, not per-frame 5-tuple churn.
      EXPECT_EQ(s.flow_ids()[v.first + i], flow);
    }
    reflectors.insert(flow);
  }
  EXPECT_GT(reflectors.size(), 4u) << "attack should spread across sources";
}

// ------------------------------------------------------------ the frames

TEST(Burst, MakeFrameShapesMatchThePattern) {
  PatternConfig amp = base_config(Pattern::kAmplification);
  const net::Packet resp = burst::BurstSourceBlock::make_frame(amp, 3, 468);
  EXPECT_EQ(resp.wire_len(), 468u);
  auto parsed = net::parse_packet(resp.bytes());
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->l4, net::L4Kind::kUdp);
  EXPECT_EQ(parsed->udp.src_port, 53);   // "DNS" reflector
  EXPECT_EQ(parsed->udp.dst_port, 443);  // one victim service

  PatternConfig syn = base_config(Pattern::kOnOff);
  syn.l4 = burst::L4::kTcpSyn;
  const net::Packet synf = burst::BurstSourceBlock::make_frame(syn, 7, 64);
  parsed = net::parse_packet(synf.bytes());
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->l4, net::L4Kind::kTcp);
  EXPECT_EQ(parsed->tcp.dst_port, 80);

  // Spoofed-source spread: distinct flows craft distinct frames,
  // deterministically.
  const net::Packet again = burst::BurstSourceBlock::make_frame(syn, 7, 64);
  EXPECT_EQ(synf.data, again.data);
  const net::Packet other = burst::BurstSourceBlock::make_frame(syn, 8, 64);
  EXPECT_NE(synf.data, other.data);
}

// ------------------------------------------------- batched vs naive modes

struct EmissionOutcome {
  std::uint64_t frames = 0;
  std::uint64_t bytes = 0;
  std::uint64_t bursts = 0;
  Picos last_arrival = 0;
};

EmissionOutcome run_emission(bool batched) {
  sim::Engine eng;
  graph::Graph g{eng};
  burst::BurstSourceConfig cfg;
  cfg.pattern = base_config(Pattern::kStrobe);
  cfg.pattern.period = 10 * kPicosPerMicro;
  cfg.pattern.pulse_frames = 16;
  cfg.batched = batched;
  cfg.horizon = 200 * kPicosPerMicro;
  auto& src = g.emplace<burst::BurstSourceBlock>(eng, "src", cfg);
  auto& sink = g.emplace<graph::SinkBlock>(eng, "sink");
  g.connect("src", 0, "sink", 0);
  g.start();
  eng.run();
  EmissionOutcome out;
  out.frames = sink.frames_in();
  out.bytes = sink.bytes();
  out.bursts = src.bursts_emitted();
  out.last_arrival = sink.last_arrival();
  EXPECT_EQ(src.frames_out(), sink.frames_in());
  EXPECT_EQ(src.wire_bytes(), sink.bytes());
  return out;
}

TEST(Burst, BatchedAndNaiveAreIndistinguishableOnTheWire) {
  const EmissionOutcome batched = run_emission(true);
  const EmissionOutcome naive = run_emission(false);
  EXPECT_EQ(batched.frames, 20u * 16u);
  EXPECT_EQ(batched.frames, naive.frames);
  EXPECT_EQ(batched.bytes, naive.bytes);
  EXPECT_EQ(batched.bursts, naive.bursts);
  // Same last-bit arrival instant: the emission mechanism must not move
  // a single frame in time.
  EXPECT_EQ(batched.last_arrival, naive.last_arrival);
  EXPECT_GT(batched.last_arrival, 0);
}

TEST(Burst, SourceRequiresAHorizon) {
  sim::Engine eng;
  graph::Graph g{eng};
  burst::BurstSourceConfig cfg;  // horizon defaults to 0
  g.emplace<burst::BurstSourceBlock>(eng, "src", cfg);
  g.emplace<graph::SinkBlock>(eng, "sink");
  g.connect("src", 0, "sink", 0);
  EXPECT_THROW(g.start(), BurstError);
}

// -------------------------------------------------- topology integration

std::string load_error(const std::string& text) {
  try {
    (void)graph::TopologyFile::from_json(text);
  } catch (const graph::TopologyError& e) {
    return e.what();
  }
  ADD_FAILURE() << "expected TopologyError, topology loaded fine";
  return {};
}

void expect_contains(const std::string& msg, const std::string& needle) {
  EXPECT_NE(msg.find(needle), std::string::npos)
      << "expected \"" << needle << "\" in: " << msg;
}

TEST(Burst, WorkloadStanzaParses) {
  const auto topo = graph::TopologyFile::from_json(R"({
    "name": "t",
    "duration_us": 500,
    "blocks": [{"name": "q", "type": "fifo_queue", "rate_gbps": 10.0,
                "queue_frames": 64}],
    "workload": {"kind": "burst", "pattern": "strobe", "rate_gbps": 4.0,
                 "period_us": 10, "pulse_frames": 8, "l4": "tcp_syn",
                 "batched": false, "ingress": "q:0", "egress": "q:0"}
  })");
  EXPECT_EQ(topo.workload.kind, graph::WorkloadSpec::Kind::kBurst);
  EXPECT_EQ(topo.workload.burst.pattern, Pattern::kStrobe);
  EXPECT_EQ(topo.workload.burst.rate_gbps, 4.0);
  EXPECT_EQ(topo.workload.burst.period, 10 * kPicosPerMicro);
  EXPECT_EQ(topo.workload.burst.pulse_frames, 8u);
  EXPECT_EQ(topo.workload.burst.l4, burst::L4::kTcpSyn);
  EXPECT_FALSE(topo.workload.burst_batched);
}

TEST(Burst, UnknownPatternSuggestsNearest) {
  const std::string msg = load_error(R"({
    "name": "t",
    "blocks": [{"name": "q", "type": "fifo_queue"}],
    "workload": {"kind": "burst", "pattern": "amplificaton",
                 "ingress": "q:0", "egress": "q:0"}
  })");
  expect_contains(msg, "unknown burst pattern 'amplificaton'");
  expect_contains(msg, "did you mean 'amplification'?");
}

TEST(Burst, PatternKeysAreStrictPerPattern) {
  // pulse_frames belongs to strobe, not on_off: strict keys catch the
  // stanza mixing patterns up.
  const std::string msg = load_error(R"({
    "name": "t",
    "blocks": [{"name": "q", "type": "fifo_queue"}],
    "workload": {"kind": "burst", "pattern": "on_off", "pulse_frames": 8,
                 "ingress": "q:0", "egress": "q:0"}
  })");
  expect_contains(msg, "unknown key 'pulse_frames'");
}

TEST(Burst, ReservedBlockNamesAreRejected) {
  const std::string msg = load_error(R"({
    "name": "t",
    "blocks": [{"name": "burst_workload", "type": "fifo_queue"}],
    "workload": {"kind": "burst", "pattern": "on_off",
                 "ingress": "burst_workload:0", "egress": "burst_workload:0"}
  })");
  expect_contains(msg, "reserved for the burst workload");
}

TEST(Burst, ValidateWorkloadCatchesSemanticErrors) {
  // Parses fine (duty is a number) but validate() must reject it.
  const auto topo = graph::TopologyFile::from_json(R"({
    "name": "t",
    "blocks": [{"name": "q", "type": "fifo_queue"}],
    "workload": {"kind": "burst", "pattern": "on_off", "duty": 2.0,
                 "ingress": "q:0", "egress": "q:0"}
  })");
  try {
    graph::validate_workload(topo);
    ADD_FAILURE() << "expected TopologyError about duty";
  } catch (const graph::TopologyError& e) {
    expect_contains(e.what(), "duty");
  }

  // The same pass spell-checks the tcp stanza's cc name.
  const auto tcp = graph::TopologyFile::from_json(R"({
    "name": "t",
    "blocks": [{"name": "q", "type": "fifo_queue"}],
    "workload": {"kind": "tcp", "cc": "neweno",
                 "ingress": "q:0", "egress": "q:0"}
  })");
  try {
    graph::validate_workload(tcp);
    ADD_FAILURE() << "expected TopologyError about cc";
  } catch (const graph::TopologyError& e) {
    expect_contains(e.what(), "unknown cc 'neweno'");
    expect_contains(e.what(), "did you mean 'newreno'?");
  }
}

TEST(Burst, WorkloadRunsThroughTheGraph) {
  const auto topo = graph::TopologyFile::from_json(R"({
    "name": "t",
    "seed": 11,
    "duration_us": 500,
    "blocks": [{"name": "q", "type": "fifo_queue", "rate_gbps": 10.0,
                "queue_frames": 64}],
    "workload": {"kind": "burst", "pattern": "on_off", "rate_gbps": 2.0,
                 "period_us": 100, "duty": 0.5,
                 "ingress": "q:0", "egress": "q:0"}
  })");
  const auto r = graph::run_topology_trial(topo, topo.seed);
  EXPECT_GT(r.burst.frames, 0u);
  EXPECT_GT(r.burst.bursts, 0u);
  // 2G bursts through a 10G queue: nothing drops, every frame reaches
  // the sink and the byte accounting closes.
  EXPECT_EQ(r.burst.rx_frames, r.burst.frames);
  EXPECT_EQ(r.burst.tx_bytes, r.burst.frames * 64u);
  EXPECT_EQ(r.burst.rx_bytes, r.burst.tx_bytes);
  EXPECT_EQ(r.graph_drops, 0u);
}

// ----------------------------------------- determinism across --jobs

// A scaled-down amplification_ddos.json: 16 spoofed reflectors volleying
// 50x-amplified responses into a 1 Gb/s bottleneck shared with 2
// closed-loop TCP flows, in 2 ms attack waves (duty 0.5).
constexpr const char* kMiniAmplification = R"({
  "name": "mini_amp",
  "seed": 3,
  "duration_ms": 4,
  "blocks": [
    {"name": "access", "type": "delay_ber", "delay_us": 2},
    {"name": "reflectors", "type": "burst_source",
     "pattern": "amplification", "rate_gbps": 2.0, "frame_size": 468,
     "attackers": 16, "request_size": 64, "amp_factor": 50,
     "period_ms": 2, "duty": 0.5},
    {"name": "bottleneck", "type": "fifo_queue", "rate_gbps": 1.0,
     "queue_frames": 60},
    {"name": "tap", "type": "monitor", "rtt_probe": true},
    {"name": "ackpath", "type": "delay_ber", "delay_us": 2}
  ],
  "edges": [{"from": "access:0", "to": "bottleneck:0"},
            {"from": "reflectors:0", "to": "bottleneck:0"},
            {"from": "bottleneck:0", "to": "tap:0"}],
  "workload": {
    "kind": "tcp", "flows": 2, "cc": "newreno",
    "ingress": "access:0", "egress": "tap:0",
    "ack_ingress": "ackpath:0", "ack_egress": "ackpath:0"
  }
})";

struct AmpOutcome {
  std::vector<graph::TopologyTrialReport> reports;
  std::string sim_metrics_json;
};

AmpOutcome run_amp_trials(std::size_t jobs, Picos series_interval = 0) {
  telemetry::registry().reset();
  const auto topo = graph::TopologyFile::from_json(kMiniAmplification);
  AmpOutcome out;
  out.reports.resize(3);

  core::TrialPlan plan;
  for (std::size_t i = 0; i < out.reports.size(); ++i) {
    core::TrialPoint pt;
    pt.seed = topo.seed + i;
    plan.points.push_back(pt);
  }
  plan.run = [&](const core::TrialPoint& pt) {
    const auto r = graph::run_topology_trial(topo, pt.seed, /*duration=*/0,
                                             /*plan=*/nullptr,
                                             /*trace=*/nullptr,
                                             series_interval);
    core::TrialStats st;
    st.metric = static_cast<double>(r.tcp.bytes_acked);
    out.reports[pt.index] = r;  // slots are disjoint across workers
    return st;
  };

  core::RunnerConfig rcfg;
  rcfg.jobs = jobs;
  (void)core::Runner{rcfg}.run(plan);
  out.sim_metrics_json =
      telemetry::registry().to_json(telemetry::Snapshot::kSimOnly);
  return out;
}

TEST(Burst, AmplificationTopologyByteIdenticalAcrossJobs) {
  const bool was_enabled = telemetry::enabled();
  telemetry::set_enabled(true);

  const AmpOutcome serial = run_amp_trials(1);
  const AmpOutcome parallel = run_amp_trials(4);

  ASSERT_EQ(serial.reports.size(), parallel.reports.size());
  for (std::size_t i = 0; i < serial.reports.size(); ++i) {
    EXPECT_EQ(serial.reports[i].tcp.bytes_acked,
              parallel.reports[i].tcp.bytes_acked)
        << "trial " << i;
    EXPECT_EQ(serial.reports[i].graph_drops, parallel.reports[i].graph_drops)
        << "trial " << i;
  }
  // The attack actually bites: frames flood in and the bottleneck sheds.
  EXPECT_GT(serial.reports[0].graph_drops, 0u);
  EXPECT_GT(serial.reports[0].tcp.bytes_acked, 0u);

  EXPECT_EQ(serial.sim_metrics_json, parallel.sim_metrics_json);
  EXPECT_NE(serial.sim_metrics_json.find("graph.reflectors.bursts"),
            std::string::npos)
      << serial.sim_metrics_json;

  telemetry::registry().reset();
  telemetry::set_enabled(was_enabled);
}

TEST(Burst, AmplificationSeriesShowsCollapseAndRecovery) {
  const AmpOutcome serial = run_amp_trials(1, kPicosPerMilli);
  const AmpOutcome parallel = run_amp_trials(4, kPicosPerMilli);

  telemetry::SeriesData a;
  for (const auto& r : serial.reports) a.merge_from(r.series);
  telemetry::SeriesData b;
  for (const auto& r : parallel.reports) b.merge_from(r.series);
  EXPECT_EQ(a.to_json(), b.to_json());

  // 2 ms waves at duty 0.5 against a 1 ms interval: intervals 0 and 2
  // are attack-on, 1 and 3 are quiet.
  ASSERT_TRUE(a.channels.count("graph.reflectors.frames_out"));
  ASSERT_TRUE(a.channels.count("tcp.bytes_acked"));
  const auto& attack = a.channels.at("graph.reflectors.frames_out").deltas;
  const auto& acked = a.channels.at("tcp.bytes_acked").deltas;
  ASSERT_GE(attack.size(), 4u);
  ASSERT_EQ(attack.size(), acked.size());
  EXPECT_GT(attack[0], 0u);
  EXPECT_EQ(attack[1], 0u);
  EXPECT_GT(attack[2], 0u);
  EXPECT_EQ(attack[3], 0u);
  // Collateral damage: victim goodput collapses under each wave and
  // recovers in the quiet interval that follows.
  EXPECT_LT(acked[0], acked[1]) << "no collapse in wave 1";
  EXPECT_LT(acked[2], acked[3]) << "no collapse in wave 2";
  EXPECT_GT(acked[1], 0u);
  EXPECT_GT(acked[3], 0u);
}

// ------------------------------------------------------ synth bridge

TEST(Burst, EnvelopeGapReplaysTheSchedule) {
  PatternConfig cfg = base_config(Pattern::kOnOff);
  cfg.period = 10 * kPicosPerMicro;
  cfg.duty = 0.5;  // 5 us on-window -> 74 frames per burst
  gen::BurstEnvelopeGap gaps{cfg, 20 * kPicosPerMicro};

  Rng rng{1};
  // In-burst gaps are the serialization slot...
  for (int i = 0; i < 73; ++i) {
    EXPECT_EQ(gaps.sample(rng, 0, 0), kSlot64At10G) << "frame " << i;
  }
  // ...the burst boundary carries the idle remainder of the period...
  const Picos idle = 10 * kPicosPerMicro - 73 * kSlot64At10G;
  EXPECT_EQ(gaps.sample(rng, 0, 0), idle);
  for (int i = 0; i < 73; ++i) EXPECT_EQ(gaps.sample(rng, 0, 0), kSlot64At10G);
  // ...and past the horizon the envelope wraps as if it repeated.
  EXPECT_EQ(gaps.sample(rng, 0, 0), idle);
  EXPECT_EQ(gaps.sample(rng, 0, 0), kSlot64At10G);
  // min_gap still clamps, like every GapModel.
  EXPECT_EQ(gaps.sample(rng, 0, kPicosPerMicro), kPicosPerMicro);
}

TEST(Burst, EnvelopeGapDrivesSynthesizeTrace) {
  PatternConfig cfg = base_config(Pattern::kOnOff);
  cfg.period = 10 * kPicosPerMicro;
  cfg.duty = 0.5;
  gen::BurstEnvelopeGap gaps{cfg, 20 * kPicosPerMicro};

  gen::TemplateConfig tc;
  tc.count = 10;
  gen::TemplateSource src{tc, std::make_unique<gen::FixedSize>(64)};
  gen::SynthSpec spec;
  spec.frames = 10;
  const auto records = gen::synthesize_trace(src, gaps, spec);
  ASSERT_EQ(records.size(), 10u);
  for (std::size_t i = 1; i < records.size(); ++i) {
    // 67.2 ns slots on the pcap timeline (ns resolution truncates to 67).
    EXPECT_EQ(records[i].ts_nanos - records[i - 1].ts_nanos, 67u);
  }
}

}  // namespace
}  // namespace osnt
