// Monitor subsystem: filter TCAM semantics, cutter/hash, stats block,
// and the RX pipeline end-to-end with the loss-limited DMA path.
#include <gtest/gtest.h>

#include "osnt/common/crc.hpp"
#include "osnt/hw/port.hpp"
#include "osnt/mon/capture.hpp"
#include "osnt/mon/cutter.hpp"
#include "osnt/mon/filter.hpp"
#include "osnt/mon/rx_pipeline.hpp"
#include "osnt/net/builder.hpp"
#include "osnt/tstamp/clock.hpp"
#include "osnt/tstamp/embed.hpp"

namespace osnt::mon {
namespace {

net::Packet udp_frame(std::uint32_t dst_ip, std::uint16_t dport,
                      std::size_t size = 128) {
  net::PacketBuilder b;
  return b.eth(net::MacAddr::from_index(1), net::MacAddr::from_index(2))
      .ipv4(net::Ipv4Addr::of(10, 0, 0, 1), net::Ipv4Addr{dst_ip},
            net::ipproto::kUdp)
      .udp(1024, dport)
      .pad_to_frame(size)
      .build();
}

net::ParsedPacket parsed(const net::Packet& p) {
  auto r = net::parse_packet(p.bytes());
  EXPECT_TRUE(r);
  return *r;
}

// ---------------------------------------------------------------- filter

TEST(FilterTable, EmptyTableCapturesAll) {
  FilterTable t;
  const auto v = t.classify(parsed(udp_frame(0x0A000101, 53)));
  EXPECT_TRUE(v.capture);
  EXPECT_FALSE(v.rule);
}

TEST(FilterTable, NonEmptyTableDropsMisses) {
  FilterTable t;
  FilterRule r;
  r.dst_port = 53;
  ASSERT_TRUE(t.add(r));
  EXPECT_TRUE(t.classify(parsed(udp_frame(1, 53))).capture);
  EXPECT_FALSE(t.classify(parsed(udp_frame(1, 80))).capture);
  EXPECT_EQ(t.misses(), 1u);
}

TEST(FilterTable, FirstMatchWins) {
  FilterTable t;
  FilterRule drop;
  drop.dst_port = 53;
  drop.action = FilterAction::kDrop;
  FilterRule all;  // matches everything
  t.add(drop);
  t.add(all);
  EXPECT_FALSE(t.classify(parsed(udp_frame(1, 53))).capture);
  EXPECT_TRUE(t.classify(parsed(udp_frame(1, 80))).capture);
  EXPECT_EQ(t.hits(0), 1u);
  EXPECT_EQ(t.hits(1), 1u);
}

TEST(FilterTable, IpPrefixMatch) {
  FilterTable t;
  FilterRule r;
  r.dst_ip = (10u << 24) | (1u << 16);  // 10.1.0.0/16
  r.dst_ip_mask = 0xFFFF0000;
  t.add(r);
  EXPECT_TRUE(t.classify(parsed(udp_frame((10u << 24) | (1u << 16) | 7, 1))).capture);
  EXPECT_FALSE(t.classify(parsed(udp_frame((10u << 24) | (2u << 16) | 7, 1))).capture);
}

TEST(FilterTable, ProtocolMatch) {
  FilterTable t;
  FilterRule r;
  r.protocol = net::ipproto::kTcp;
  t.add(r);
  EXPECT_FALSE(t.classify(parsed(udp_frame(1, 53))).capture);
  net::PacketBuilder b;
  const auto tcp = b.eth(net::MacAddr::from_index(1), net::MacAddr::from_index(2))
                       .ipv4(net::Ipv4Addr::of(1, 1, 1, 1),
                             net::Ipv4Addr::of(2, 2, 2, 2), net::ipproto::kTcp)
                       .tcp(1, 2)
                       .build();
  EXPECT_TRUE(t.classify(parsed(tcp)).capture);
}

TEST(FilterTable, EthertypeAndVlan) {
  FilterTable t;
  FilterRule r;
  r.vlan_id = 42;
  t.add(r);
  net::PacketBuilder b;
  const auto tagged =
      b.eth(net::MacAddr::from_index(1), net::MacAddr::from_index(2))
          .vlan(42)
          .ipv4(net::Ipv4Addr::of(1, 1, 1, 1), net::Ipv4Addr::of(2, 2, 2, 2),
                net::ipproto::kUdp)
          .udp(1, 2)
          .build();
  EXPECT_TRUE(t.classify(parsed(tagged)).capture);
  EXPECT_FALSE(t.classify(parsed(udp_frame(1, 2))).capture);
}

TEST(FilterTable, PortMatchOnPortlessPacketFails) {
  FilterTable t;
  FilterRule r;
  r.src_port = 1024;
  t.add(r);
  net::PacketBuilder b;
  const auto icmp =
      b.eth(net::MacAddr::from_index(1), net::MacAddr::from_index(2))
          .ipv4(net::Ipv4Addr::of(1, 1, 1, 1), net::Ipv4Addr::of(2, 2, 2, 2),
                net::ipproto::kIcmp)
          .icmp_echo(1, 1)
          .build();
  EXPECT_FALSE(t.classify(parsed(icmp)).capture);
}

TEST(FilterTable, CapacityBounded) {
  FilterTable t;
  for (std::size_t i = 0; i < FilterTable::kMaxRules; ++i)
    EXPECT_TRUE(t.add(FilterRule{}));
  EXPECT_FALSE(t.add(FilterRule{}));
  t.clear();
  EXPECT_TRUE(t.add(FilterRule{}));
}

// ---------------------------------------------------------------- cutter

TEST(Cutter, DisabledKeepsFullFrame) {
  PacketCutter c;
  const auto p = udp_frame(1, 1, 512);
  const auto r = c.process(p.bytes());
  EXPECT_EQ(r.data.size(), p.size());
  EXPECT_EQ(r.orig_len, p.size());
}

TEST(Cutter, SnapsToLength) {
  CutterConfig cfg;
  cfg.snap_len = 64;
  PacketCutter c{cfg};
  const auto p = udp_frame(1, 1, 1518);
  const auto r = c.process(p.bytes());
  EXPECT_EQ(r.data.size(), 64u);
  EXPECT_EQ(r.orig_len, p.size());
}

TEST(Cutter, HashCoversFullFrame) {
  CutterConfig cfg;
  cfg.snap_len = 32;
  PacketCutter c{cfg};
  const auto p = udp_frame(1, 1, 256);
  const auto r = c.process(p.bytes());
  EXPECT_EQ(r.hash, crc32(p.bytes()));  // not the hash of the cut prefix
  EXPECT_NE(r.hash, crc32(ByteSpan{r.data.data(), r.data.size()}));
}

TEST(Cutter, SnapLongerThanFrameIsNoop) {
  CutterConfig cfg;
  cfg.snap_len = 10'000;
  PacketCutter c{cfg};
  const auto p = udp_frame(1, 1, 128);
  EXPECT_EQ(c.process(p.bytes()).data.size(), p.size());
}

// ------------------------------------------------------------ stats block

TEST(StatsBlock, SizeBinsAndProtocols) {
  StatsBlock s;
  s.record(parsed(udp_frame(1, 1, 64)), 64, 0);
  s.record(parsed(udp_frame(1, 1, 100)), 100, 1000);
  s.record(parsed(udp_frame(1, 1, 1518)), 1518, 2000);
  EXPECT_EQ(s.frames(), 3u);
  EXPECT_EQ(s.size_bins().p64, 1u);
  EXPECT_EQ(s.size_bins().p65_127, 1u);
  EXPECT_EQ(s.size_bins().p1024_1518, 1u);
  EXPECT_EQ(s.protocols().ipv4, 3u);
  EXPECT_EQ(s.protocols().udp, 3u);
}

TEST(StatsBlock, MeanRates) {
  StatsBlock s;
  // Two 64 B frames 67.2 ns apart = line rate.
  s.record(parsed(udp_frame(1, 1, 64)), 64, 0);
  s.record(parsed(udp_frame(1, 1, 64)), 64, 67'200);
  EXPECT_NEAR(s.mean_gbps(), 10.0, 0.01);
  EXPECT_NEAR(s.mean_pps(), 14'880'952.0, 100.0);
}

// ------------------------------------------------------------ rx pipeline

struct RxFixture {
  sim::Engine eng;
  hw::EthPort src{eng}, dst{eng};
  tstamp::GpsModel gps;
  tstamp::DisciplinedClock clock{gps};
  hw::DmaEngine dma{eng};
  HostCapture host{dma};
  RxPipeline rx;

  explicit RxFixture(RxConfig cfg = RxConfig())
      : rx(eng, dst.rx(), clock, dma, cfg) {
    hw::connect(src, dst);
  }
};

TEST(RxPipeline, CapturesToHost) {
  RxFixture f;
  (void)f.src.tx().transmit(udp_frame(1, 53));
  f.eng.run();
  EXPECT_EQ(f.rx.seen(), 1u);
  EXPECT_EQ(f.rx.captured(), 1u);
  ASSERT_EQ(f.host.size(), 1u);
  EXPECT_EQ(f.host.records()[0].orig_len, 124u);
}

TEST(RxPipeline, TimestampAtMacReceipt) {
  RxFixture f;
  (void)f.src.tx().transmit(udp_frame(1, 53, 1518));
  f.eng.run();
  ASSERT_EQ(f.host.size(), 1u);
  // Stamp ≈ first-bit arrival = propagation delay (not +1.2 µs of frame).
  const double expect_ns = to_nanos(sim::fiber_delay(2.0));
  EXPECT_NEAR(f.host.records()[0].ts.to_nanos(), expect_ns, 10.0);
}

TEST(RxPipeline, FilterDropsBeforeDma) {
  RxConfig cfg;
  RxFixture f{cfg};
  FilterRule keep;
  keep.dst_port = 53;
  f.rx.filters().add(keep);
  (void)f.src.tx().transmit(udp_frame(1, 53));
  (void)f.src.tx().transmit(udp_frame(1, 80));
  f.eng.run();
  EXPECT_EQ(f.rx.seen(), 2u);
  EXPECT_EQ(f.rx.captured(), 1u);
  EXPECT_EQ(f.rx.filtered_out(), 1u);
  EXPECT_EQ(f.host.size(), 1u);
}

TEST(RxPipeline, CutterAppliesSnap) {
  RxConfig cfg;
  cfg.cutter.snap_len = 48;
  RxFixture f{cfg};
  (void)f.src.tx().transmit(udp_frame(1, 53, 512));
  f.eng.run();
  ASSERT_EQ(f.host.size(), 1u);
  EXPECT_EQ(f.host.records()[0].data.size(), 48u);
  EXPECT_EQ(f.host.records()[0].orig_len, 508u);
}

TEST(RxPipeline, CaptureDisabledStillCounts) {
  RxConfig cfg;
  cfg.capture_enabled = false;
  RxFixture f{cfg};
  (void)f.src.tx().transmit(udp_frame(1, 53));
  f.eng.run();
  EXPECT_EQ(f.rx.seen(), 1u);
  EXPECT_EQ(f.rx.captured(), 0u);
  EXPECT_EQ(f.host.size(), 0u);
  EXPECT_EQ(f.rx.stats().frames(), 1u);
}

TEST(RxPipeline, DmaOverloadDropsNotBackpressures) {
  sim::Engine eng;
  hw::EthPort src{eng}, dst{eng};
  hw::connect(src, dst);
  tstamp::GpsModel gps;
  tstamp::DisciplinedClock clock{gps};
  hw::DmaConfig dcfg;
  dcfg.gbps = 0.5;  // far below the 10G wire
  dcfg.ring_entries = 8;
  hw::DmaEngine dma{eng, dcfg};
  HostCapture host{dma};
  RxPipeline rx{eng, dst.rx(), clock, dma};
  for (int i = 0; i < 200; ++i) (void)src.tx().transmit(udp_frame(1, 53, 1518));
  eng.run();
  EXPECT_EQ(rx.seen(), 200u);           // the wire never lost a frame
  EXPECT_GT(rx.dma_drops(), 0u);        // but the host path did
  EXPECT_LT(host.size(), 200u);
  EXPECT_EQ(host.size() + rx.dma_drops(), 200u);
}

// ------------------------------------------------------------ host decode

TEST(HostCapture, SequenceReportFindsLossAndReorder) {
  sim::Engine eng;
  hw::DmaEngine dma{eng};
  HostCapture host{dma};
  auto push = [&](std::uint32_t seq) {
    net::Packet p = udp_frame(1, 53);
    tstamp::embed_timestamp(p.mut_bytes(), tstamp::kDefaultEmbedOffset,
                            {tstamp::Timestamp::from_seconds(1.0), seq});
    CaptureRecord rec;
    rec.data = p.data;
    dma.enqueue(std::move(rec).to_dma());
  };
  push(0);
  push(1);
  push(3);  // 2 lost
  push(2);  // reordered
  eng.run();
  const auto rep = host.sequence_report(tstamp::kDefaultEmbedOffset);
  EXPECT_EQ(rep.received, 4u);
  EXPECT_EQ(rep.lost, 0u);  // range 0..3 fully covered after reorder
  EXPECT_EQ(rep.reordered, 1u);
  EXPECT_EQ(rep.max_seq, 3u);
}

TEST(HostCapture, LatencyFromEmbeddedStamps) {
  sim::Engine eng;
  hw::DmaEngine dma{eng};
  HostCapture host{dma};
  net::Packet p = udp_frame(1, 53);
  tstamp::embed_timestamp(p.mut_bytes(), tstamp::kDefaultEmbedOffset,
                          {tstamp::Timestamp::from_seconds(1.0), 0});
  CaptureRecord rec;
  rec.data = p.data;
  rec.ts = tstamp::Timestamp::from_seconds(1.000005);  // +5 µs
  dma.enqueue(std::move(rec).to_dma());
  eng.run();
  const auto lat = host.latency_ns(tstamp::kDefaultEmbedOffset);
  ASSERT_EQ(lat.count(), 1u);
  EXPECT_NEAR(lat.samples()[0], 5000.0, 1.0);
}

}  // namespace
}  // namespace osnt::mon
