// Closed-loop acceptance tests: congestion-controlled flows over the
// simulated 4-port dataplane with ACKs returning through the reverse
// link, so injected faults (BER windows) perturb the control loop end to
// end. Also pins the PR's determinism contract: kSimOnly telemetry
// snapshots of a sharded tcp trial plan are byte-identical at any --jobs.
#include <gtest/gtest.h>

#include <string>

#include "osnt/core/runner.hpp"
#include "osnt/fault/plan.hpp"
#include "osnt/tcp/workload.hpp"
#include "osnt/telemetry/registry.hpp"

namespace osnt::tcp {
namespace {

// Mirrors examples/faults/ber_tcp.json (tests cannot rely on the cwd):
// a bit-error window in the middle of the run, long and harsh enough at
// 5 Gb/s that multiple 1518 B frames are corrupted even after the ramp.
constexpr const char* kBerPlanJson = R"({
  "seed": 5,
  "events": [
    {"type": "ber_window", "at_ms": 2, "duration_ms": 6, "ber": 5e-6,
     "ramp_us": 500}
  ]
})";

WorkloadConfig base_cfg(const std::string& cc, std::size_t flows) {
  WorkloadConfig cfg;
  cfg.cc = cc;
  cfg.flows = flows;
  cfg.bottleneck_gbps = 5.0;
  cfg.queue_segments = 256;
  cfg.seed = 1;
  return cfg;
}

/// The bottleneck rate is L1 (preamble + IFG included); application
/// goodput can at best be the TCP-payload share of a 1518 B frame's
/// 1538 B wire footprint.
double payload_share_of(double gbps) {
  return gbps * 1e9 * 1448.0 / 1538.0;
}

TEST(TcpClosedLoop, CleanLinkCompletesByteLimitedTransfers) {
  for (const char* cc : {"newreno", "cubic", "bbr"}) {
    WorkloadConfig cfg = base_cfg(cc, 2);
    cfg.bytes_per_flow = std::uint64_t{120} * 1448;
    const auto r = run_closed_loop_trial(cfg, 20 * kPicosPerMilli);
    EXPECT_EQ(r.bytes_acked, 2 * cfg.bytes_per_flow) << cc;
    EXPECT_EQ(r.rto_fires, 0u) << cc;
  }
}

TEST(TcpClosedLoop, BbrDeliveryRateTracksBottleneckWithinTenPercent) {
  WorkloadConfig cfg = base_cfg("bbr", 1);
  const auto r = run_closed_loop_trial(cfg, 20 * kPicosPerMilli);
  const double expected = payload_share_of(cfg.bottleneck_gbps);
  EXPECT_GE(r.min_flow_rate_bps, 0.9 * expected);
  EXPECT_LE(r.max_flow_rate_bps, 1.1 * expected);
  // A clean link also means BBR should fill the pipe without loss.
  EXPECT_EQ(r.retransmits, 0u);
  EXPECT_GE(r.goodput_bps, 0.85 * expected);
}

TEST(TcpClosedLoop, FlowsShareTheBottleneck) {
  WorkloadConfig cfg = base_cfg("newreno", 4);
  const auto r = run_closed_loop_trial(cfg, 20 * kPicosPerMilli);
  // Aggregate goodput approaches the pipe; nobody is starved outright.
  EXPECT_GE(r.goodput_bps, 0.6 * payload_share_of(cfg.bottleneck_gbps));
  EXPECT_GT(r.min_flow_rate_bps, 0.0);
  EXPECT_GT(r.acks_sent, 0u);
}

TEST(TcpClosedLoop, BerWindowForcesRetransmissionAndCwndReduction) {
  // The PR's headline acceptance: osnt_run tcp --cc bbr --flows 8 with a
  // ber_window plan must produce at least one retransmission and a cwnd
  // reduction reacting to the error window — loss anywhere on the sim
  // path closes the loop.
  const fault::FaultPlan plan = fault::FaultPlan::from_json(kBerPlanJson);
  WorkloadConfig cfg = base_cfg("bbr", 8);
  const auto faulted = run_closed_loop_trial(cfg, 20 * kPicosPerMilli, &plan);
  EXPECT_GE(faulted.retransmits, 1u);
  EXPECT_GE(faulted.cwnd_reductions, 1u);
  EXPECT_GT(faulted.bytes_acked, 0u);
}

TEST(TcpClosedLoop, BerWindowIsTheOnlyLossSourceAtLowFanIn) {
  // At 8 flows the startup burst alone overflows the shared 256-segment
  // queue, so the clean-vs-faulted contrast needs a fan-in the bottleneck
  // buffer can absorb: a single BBR flow is loss-free on a clean link,
  // and every loss signal under the plan is attributable to the window.
  const fault::FaultPlan plan = fault::FaultPlan::from_json(kBerPlanJson);
  WorkloadConfig cfg = base_cfg("bbr", 1);
  const auto clean = run_closed_loop_trial(cfg, 20 * kPicosPerMilli);
  EXPECT_EQ(clean.retransmits + clean.rto_fires, 0u);
  EXPECT_EQ(clean.cwnd_reductions, 0u);

  const auto faulted = run_closed_loop_trial(cfg, 20 * kPicosPerMilli, &plan);
  EXPECT_GE(faulted.retransmits, 1u);
  EXPECT_GE(faulted.cwnd_reductions, 1u);
  EXPECT_LT(faulted.goodput_bps, clean.goodput_bps);
}

TEST(TcpClosedLoop, EveryControllerRecoversThroughTheBerWindow) {
  const fault::FaultPlan plan = fault::FaultPlan::from_json(kBerPlanJson);
  for (const char* cc : {"newreno", "cubic", "bbr"}) {
    WorkloadConfig cfg = base_cfg(cc, 4);
    // Bound the RTO backoff so a flow silenced inside the 6 ms window is
    // back within a couple of milliseconds of it closing.
    cfg.max_rto = 8 * kPicosPerMilli;
    const auto r = run_closed_loop_trial(cfg, 30 * kPicosPerMilli, &plan);
    EXPECT_GE(r.retransmits, 1u) << cc;
    EXPECT_GE(r.cwnd_reductions, 1u) << cc;
    // Recovery: goodput despite the window (the loop keeps turning).
    EXPECT_GT(r.goodput_bps, 0.2 * payload_share_of(cfg.bottleneck_gbps))
        << cc;
  }
}

TEST(TcpClosedLoop, ReceiverCountsOutOfOrderSegmentsUnderLoss) {
  const fault::FaultPlan plan = fault::FaultPlan::from_json(kBerPlanJson);
  WorkloadConfig cfg = base_cfg("newreno", 2);
  const auto eng_report = run_closed_loop_trial(cfg, 20 * kPicosPerMilli,
                                                &plan);
  // A dropped data frame makes its successors arrive above rcv_nxt.
  EXPECT_GT(eng_report.retransmits, 0u);
}

TEST(TcpClosedLoop, LazyDelayedAckElidesTimerCancels) {
  // The delack timer is armed once and left armed across ACK sends; a
  // cumulative ACK riding on data just clears pending_ack_segs. Every
  // such elision is counted — under steady bidirectional load there must
  // be many, and the engine must see strictly fewer cancels than arms.
  WorkloadConfig cfg = base_cfg("bbr", 2);
  ClosedLoopTestbed bed(cfg);
  bed.run_until(10 * kPicosPerMilli);
  EXPECT_GT(bed.workload().delack_cancels_saved(), 0u);
  EXPECT_GT(bed.workload().total_acks_sent(), 0u);
}

// ------------------------------------------------------- determinism

std::string tcp_sim_snapshot_for_jobs(std::size_t jobs,
                                      bool wheel_timers = true) {
  auto& reg = telemetry::registry();
  reg.reset();
  const fault::FaultPlan plan = fault::FaultPlan::from_json(kBerPlanJson);
  core::TrialPlan trial_plan;
  trial_plan.points.resize(4);
  for (std::size_t i = 0; i < trial_plan.points.size(); ++i) {
    trial_plan.points[i].seed = 100 + i;
  }
  trial_plan.run = [&plan, wheel_timers](const core::TrialPoint& pt) {
    WorkloadConfig cfg = base_cfg(pt.index % 2 == 0 ? "bbr" : "cubic", 2);
    cfg.seed = pt.seed;
    cfg.wheel_timers = wheel_timers;
    const auto r = run_closed_loop_trial(cfg, 5 * kPicosPerMilli, &plan);
    core::TrialStats s;
    s.tx_frames = r.segs_sent;
    s.rx_frames = r.acks_sent;
    s.metric = r.goodput_bps;
    return s;
  };
  core::RunnerConfig rcfg;
  rcfg.jobs = jobs;
  (void)core::Runner{rcfg}.run(trial_plan);
  return reg.to_json(telemetry::Snapshot::kSimOnly);
}

TEST(TcpClosedLoop, SimSnapshotsByteIdenticalAcrossJobs) {
  const std::string serial = tcp_sim_snapshot_for_jobs(1);
  EXPECT_GT(serial.size(), 0u);
  EXPECT_NE(serial.find("tcp.segs_sent"), std::string::npos);
  EXPECT_NE(serial.find("tcp.cwnd_bytes"), std::string::npos);
  EXPECT_NE(serial.find("tcp.acks_sent"), std::string::npos);
  EXPECT_EQ(serial, tcp_sim_snapshot_for_jobs(4));
}

TEST(TcpClosedLoop, SimSnapshotsByteIdenticalWheelVsHeap) {
  // The tentpole determinism contract end to end: routing RTO/delack/
  // pacing timers through the timing wheel instead of the heap must not
  // change a single byte of kSimOnly telemetry — implementation-detail
  // gauges carry the "impl" token and are filtered out, and the wheel
  // drains entries into the heap with their exact arm-time keys.
  const std::string wheel = tcp_sim_snapshot_for_jobs(1, true);
  EXPECT_GT(wheel.size(), 0u);
  EXPECT_EQ(wheel, tcp_sim_snapshot_for_jobs(1, false));
}

TEST(TcpClosedLoop, TrialReportsIdenticalWheelVsHeap) {
  const fault::FaultPlan plan = fault::FaultPlan::from_json(kBerPlanJson);
  for (const char* cc : {"newreno", "bbr"}) {
    WorkloadConfig cfg = base_cfg(cc, 4);
    cfg.seed = 9;
    WorkloadConfig heap_cfg = cfg;
    heap_cfg.wheel_timers = false;
    const auto a = run_closed_loop_trial(cfg, 10 * kPicosPerMilli, &plan);
    const auto b =
        run_closed_loop_trial(heap_cfg, 10 * kPicosPerMilli, &plan);
    EXPECT_EQ(a.bytes_acked, b.bytes_acked) << cc;
    EXPECT_EQ(a.segs_sent, b.segs_sent) << cc;
    EXPECT_EQ(a.retransmits, b.retransmits) << cc;
    EXPECT_EQ(a.rto_fires, b.rto_fires) << cc;
    EXPECT_EQ(a.acks_sent, b.acks_sent) << cc;
    EXPECT_EQ(a.queue_drops, b.queue_drops) << cc;
    EXPECT_EQ(a.goodput_bps, b.goodput_bps) << cc;
  }
}

TEST(TcpClosedLoop, RerunsAreByteIdenticalForFixedSeed) {
  const fault::FaultPlan plan = fault::FaultPlan::from_json(kBerPlanJson);
  WorkloadConfig cfg = base_cfg("bbr", 3);
  cfg.seed = 77;
  const auto a = run_closed_loop_trial(cfg, 10 * kPicosPerMilli, &plan);
  const auto b = run_closed_loop_trial(cfg, 10 * kPicosPerMilli, &plan);
  EXPECT_EQ(a.bytes_acked, b.bytes_acked);
  EXPECT_EQ(a.segs_sent, b.segs_sent);
  EXPECT_EQ(a.retransmits, b.retransmits);
  EXPECT_EQ(a.rto_fires, b.rto_fires);
  EXPECT_EQ(a.fast_retx, b.fast_retx);
  EXPECT_EQ(a.acks_sent, b.acks_sent);
  EXPECT_EQ(a.queue_drops, b.queue_drops);
  EXPECT_EQ(a.goodput_bps, b.goodput_bps);
}

}  // namespace
}  // namespace osnt::tcp
