// OFLOPS modules under control-channel outages: a disconnect that eats
// flow_mods/barriers mid-flight must degrade the measurement, not hang
// or crash it. Channel latency is raised to 10 ms so the in-flight
// window is wide and the injected outage deterministically lands inside
// it; the modules' reconnect re-drives then complete the run.
#include <gtest/gtest.h>

#include "osnt/fault/injector.hpp"
#include "osnt/fault/plan.hpp"
#include "osnt/oflops/consistency.hpp"
#include "osnt/oflops/context.hpp"
#include "osnt/oflops/flowmod_latency.hpp"

namespace osnt::oflops {
namespace {

openflow::ChannelConfig slow_channel() {
  openflow::ChannelConfig cfg;
  cfg.latency = 10 * kPicosPerMilli;  // each message spends 10 ms in flight
  return cfg;
}

dut::OpenFlowSwitchConfig switch_config() {
  dut::OpenFlowSwitchConfig cfg;
  cfg.commit_base = 2 * kPicosPerMilli;
  cfg.table.max_entries = 16384;
  return cfg;
}

TEST(OflopsFaults, FlowModLatencySurvivesMidRoundDisconnect) {
  Testbed tb{switch_config(), core::DeviceConfig(), slow_channel()};

  FlowModLatencyConfig cfg;
  cfg.table_size = 8;
  cfg.rounds = 5;
  cfg.fill_settle = 30 * kPicosPerMilli;
  cfg.settle = 30 * kPicosPerMilli;
  FlowModLatencyModule mod{cfg};

  // Timeline: fill barrier returns at ~20 ms, probe starts at ~50 ms, the
  // first redirect goes out at ~80 ms and its flow_mod + barrier are in
  // flight until ~100 ms. An outage at 85 ms eats both mid-flight.
  fault::FaultPlan plan;
  plan.ctrl_disconnect(85 * kPicosPerMilli, 2 * kPicosPerMilli);
  fault::Injector inj{tb.eng, plan};
  inj.attach_channel(tb.chan);
  inj.arm();

  const Report r = tb.ctx.run(mod, 60 * kPicosPerSec);
  EXPECT_TRUE(mod.finished());  // degraded but complete — no hang
  EXPECT_EQ(inj.injected_total(), 1u);
  EXPECT_GE(tb.chan.messages_lost_in_flight(), 2u);  // flow_mod + barrier

  const auto scalar = [&r](const std::string& name) {
    for (const auto& s : r.scalars)
      if (s.name == name) return s.value;
    ADD_FAILURE() << "missing scalar " << name;
    return -1.0;
  };
  EXPECT_EQ(scalar("rounds_completed"), 5.0);  // every round measured
  EXPECT_EQ(scalar("channel_disconnects"), 1.0);
  EXPECT_GE(scalar("degraded_rounds"), 1.0);  // the hit round was re-driven
}

TEST(OflopsFaults, ConsistencySurvivesDisconnectDuringUpdateBurst) {
  Testbed tb{switch_config(), core::DeviceConfig(), slow_channel()};

  ConsistencyConfig cfg;
  cfg.rule_count = 16;
  cfg.warmup = 100 * kPicosPerMilli;
  cfg.drain = 50 * kPicosPerMilli;
  ConsistencyModule mod{cfg};

  // Install barrier returns at ~20 ms, the update burst fires at ~120 ms
  // and its 16 flow_mods + barrier are in flight until ~130 ms. The
  // outage at 123 ms loses the whole burst; without the reconnect
  // re-drive no flow would ever switch and the module would hang.
  fault::FaultPlan plan;
  plan.ctrl_disconnect(123 * kPicosPerMilli, 3 * kPicosPerMilli);
  fault::Injector inj{tb.eng, plan};
  inj.attach_channel(tb.chan);
  inj.arm();

  const Report r = tb.ctx.run(mod, 60 * kPicosPerSec);
  EXPECT_TRUE(mod.finished());
  EXPECT_GE(tb.chan.messages_lost_in_flight(), 16u);

  const auto scalar = [&r](const std::string& name) {
    for (const auto& s : r.scalars)
      if (s.name == name) return s.value;
    ADD_FAILURE() << "missing scalar " << name;
    return -1.0;
  };
  EXPECT_EQ(scalar("flows_switched"), 16.0);  // measurement completed
  EXPECT_EQ(scalar("channel_disconnects"), 1.0);
  EXPECT_EQ(scalar("rules_resent"), 16.0);
}

TEST(OflopsFaults, CleanRunReportsNoDegradation) {
  Testbed tb{switch_config(), core::DeviceConfig(), slow_channel()};
  FlowModLatencyConfig cfg;
  cfg.table_size = 8;
  cfg.rounds = 3;
  cfg.fill_settle = 30 * kPicosPerMilli;
  cfg.settle = 30 * kPicosPerMilli;
  FlowModLatencyModule mod{cfg};
  const Report r = tb.ctx.run(mod, 60 * kPicosPerSec);
  EXPECT_TRUE(mod.finished());
  for (const auto& s : r.scalars) {
    if (s.name == "channel_disconnects" || s.name == "degraded_rounds") {
      EXPECT_EQ(s.value, 0.0) << s.name;
    }
  }
}

}  // namespace
}  // namespace osnt::oflops
