// PCAP reader/writer: round trips in both precisions, error paths.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>

#include "osnt/net/builder.hpp"
#include "osnt/net/pcap.hpp"

namespace osnt::net {
namespace {

class PcapTest : public ::testing::Test {
 protected:
  std::string path_ = (std::filesystem::temp_directory_path() /
                       ("osnt_pcap_test_" + std::to_string(::getpid()) + "_" +
                        std::string(::testing::UnitTest::GetInstance()
                                        ->current_test_info()
                                        ->name()) +
                        ".pcap"))
                          .string();

  void TearDown() override { std::remove(path_.c_str()); }

  static Packet frame(std::size_t size, std::uint16_t dport) {
    PacketBuilder b;
    return b.eth(MacAddr::from_index(1), MacAddr::from_index(2))
        .ipv4(Ipv4Addr::of(10, 0, 0, 1), Ipv4Addr::of(10, 0, 1, 1),
              ipproto::kUdp)
        .udp(1024, dport)
        .pad_to_frame(size)
        .build();
  }
};

TEST_F(PcapTest, NanosecondRoundTrip) {
  {
    PcapWriter w{path_, /*nanosecond=*/true};
    w.write(1'234'567'890'123ull, frame(128, 1).bytes());
    w.write(1'234'567'890'999ull, frame(256, 2).bytes());
    EXPECT_EQ(w.records_written(), 2u);
  }
  PcapReader r{path_};
  EXPECT_TRUE(r.nanosecond_format());
  EXPECT_EQ(r.link_type(), 1u);
  auto rec1 = r.next();
  ASSERT_TRUE(rec1);
  EXPECT_EQ(rec1->ts_nanos, 1'234'567'890'123ull);
  EXPECT_EQ(rec1->data.size(), 124u);  // frame minus FCS
  auto rec2 = r.next();
  ASSERT_TRUE(rec2);
  EXPECT_EQ(rec2->ts_nanos, 1'234'567'890'999ull);
  EXPECT_FALSE(r.next());
}

TEST_F(PcapTest, MicrosecondTruncatesToMicros) {
  {
    PcapWriter w{path_, /*nanosecond=*/false};
    w.write(5'000'001'234ull, frame(64, 1).bytes());
  }
  PcapReader r{path_};
  EXPECT_FALSE(r.nanosecond_format());
  auto rec = r.next();
  ASSERT_TRUE(rec);
  EXPECT_EQ(rec->ts_nanos, 5'000'001'000ull);  // µs precision
}

TEST_F(PcapTest, OrigLenPreservedForSnapped) {
  {
    PcapWriter w{path_};
    const Packet big = frame(1518, 1);
    Bytes cut(big.data.begin(), big.data.begin() + 64);
    w.write(42, ByteSpan{cut.data(), cut.size()}, 1514);
  }
  PcapReader r{path_};
  auto rec = r.next();
  ASSERT_TRUE(rec);
  EXPECT_EQ(rec->data.size(), 64u);
  EXPECT_EQ(rec->orig_len, 1514u);
}

TEST_F(PcapTest, ReadAllCollectsEverything) {
  {
    PcapWriter w{path_};
    for (int i = 0; i < 10; ++i)
      w.write(static_cast<std::uint64_t>(i) * 1000,
              frame(64 + static_cast<std::size_t>(i) * 8, 1).bytes());
  }
  const auto all = PcapReader::read_all(path_);
  ASSERT_EQ(all.size(), 10u);
  for (int i = 0; i < 10; ++i)
    EXPECT_EQ(all[static_cast<std::size_t>(i)].ts_nanos,
              static_cast<std::uint64_t>(i) * 1000);
}

TEST_F(PcapTest, MissingFileThrows) {
  EXPECT_THROW(PcapReader{"/nonexistent/nope.pcap"}, std::runtime_error);
}

TEST_F(PcapTest, BadMagicThrows) {
  {
    std::FILE* f = std::fopen(path_.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    const char junk[] = "NOTAPCAPFILE0000000000000000";
    std::fwrite(junk, 1, sizeof junk, f);
    std::fclose(f);
  }
  EXPECT_THROW(PcapReader{path_}, std::runtime_error);
}

TEST_F(PcapTest, TruncatedFinalRecordIsLenientEof) {
  {
    PcapWriter w{path_};
    w.write(1, frame(256, 1).bytes());
    w.write(2, frame(256, 2).bytes());
  }
  // Chop the file mid-record: the capture died while writing the tail.
  std::filesystem::resize_file(path_, std::filesystem::file_size(path_) - 50);
  PcapReader r{path_};
  EXPECT_TRUE(r.next());  // intact first record still delivered
  EXPECT_FALSE(r.next());  // truncated tail → EOF, not an exception
  EXPECT_EQ(r.truncated_tail(), 1u);
  EXPECT_FALSE(r.next());  // stays at EOF on repeated reads
  EXPECT_EQ(r.truncated_tail(), 1u);
}

TEST_F(PcapTest, TruncatedHeaderTailIsLenientEof) {
  {
    PcapWriter w{path_};
    w.write(1, frame(256, 1).bytes());
  }
  // Chop inside the 16-byte record header itself: 24-byte global header
  // plus the first 6 bytes of the record header survive.
  std::filesystem::resize_file(path_, 24 + 6);
  PcapReader r{path_};
  EXPECT_FALSE(r.next());
  EXPECT_EQ(r.truncated_tail(), 1u);
}

TEST_F(PcapTest, TruncatedRecordThrowsInStrictMode) {
  {
    PcapWriter w{path_};
    w.write(1, frame(256, 1).bytes());
  }
  std::filesystem::resize_file(path_, std::filesystem::file_size(path_) - 50);
  PcapReader r{path_, PcapReaderOptions{.strict = true}};
  EXPECT_THROW((void)r.next(), std::runtime_error);
}

TEST_F(PcapTest, MoveTransfersOwnership) {
  {
    PcapWriter w{path_};
    w.write(1, frame(64, 1).bytes());
  }
  PcapReader a{path_};
  PcapReader b{std::move(a)};
  EXPECT_TRUE(b.next());
}

}  // namespace
}  // namespace osnt::net
