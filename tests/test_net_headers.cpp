// Header value types: parse/format, wire round-trips, edge cases.
#include <gtest/gtest.h>

#include "osnt/net/headers.hpp"

namespace osnt::net {
namespace {

TEST(MacAddr, ParseAndFormat) {
  const auto m = MacAddr::parse("0a:1b:2c:3d:4e:5f");
  ASSERT_TRUE(m);
  EXPECT_EQ(m->to_string(), "0a:1b:2c:3d:4e:5f");
}

TEST(MacAddr, ParseRejectsGarbage) {
  EXPECT_FALSE(MacAddr::parse("not a mac"));
  EXPECT_FALSE(MacAddr::parse("00:11:22:33:44"));
  EXPECT_FALSE(MacAddr::parse("00:11:22:33:44:55:66"));
  EXPECT_FALSE(MacAddr::parse("00:11:22:33:44:1z2"));
}

TEST(MacAddr, BroadcastAndMulticast) {
  EXPECT_TRUE(MacAddr::broadcast().is_broadcast());
  EXPECT_TRUE(MacAddr::broadcast().is_multicast());
  const auto uni = MacAddr::from_index(7);
  EXPECT_FALSE(uni.is_broadcast());
  EXPECT_FALSE(uni.is_multicast());
}

TEST(MacAddr, FromIndexDistinct) {
  EXPECT_NE(MacAddr::from_index(1), MacAddr::from_index(2));
  EXPECT_EQ(MacAddr::from_index(42), MacAddr::from_index(42));
}

TEST(MacAddr, U64RoundHoldsBytes) {
  const auto m = MacAddr::parse("01:02:03:04:05:06");
  ASSERT_TRUE(m);
  EXPECT_EQ(m->to_u64(), 0x010203040506ull);
}

TEST(Ipv4Addr, ParseAndFormat) {
  const auto a = Ipv4Addr::parse("192.168.1.42");
  ASSERT_TRUE(a);
  EXPECT_EQ(a->to_string(), "192.168.1.42");
  EXPECT_EQ(a->v, (192u << 24) | (168u << 16) | (1u << 8) | 42u);
}

TEST(Ipv4Addr, ParseRejectsBad) {
  EXPECT_FALSE(Ipv4Addr::parse("256.1.1.1"));
  EXPECT_FALSE(Ipv4Addr::parse("1.2.3"));
  EXPECT_FALSE(Ipv4Addr::parse("1.2.3.4.5"));
  EXPECT_FALSE(Ipv4Addr::parse("a.b.c.d"));
}

TEST(Ipv4Addr, OfConstructor) {
  EXPECT_EQ(Ipv4Addr::of(10, 0, 0, 1).to_string(), "10.0.0.1");
}

TEST(EthHeader, WireRoundTrip) {
  EthHeader h;
  h.dst = MacAddr::from_index(1);
  h.src = MacAddr::from_index(2);
  h.ethertype = 0x0800;
  std::uint8_t buf[EthHeader::kSize];
  h.write(buf);
  const auto back = EthHeader::read(buf);
  ASSERT_TRUE(back);
  EXPECT_EQ(back->dst, h.dst);
  EXPECT_EQ(back->src, h.src);
  EXPECT_EQ(back->ethertype, h.ethertype);
}

TEST(EthHeader, ReadRejectsShort) {
  std::uint8_t buf[13] = {};
  EXPECT_FALSE(EthHeader::read(ByteSpan{buf, sizeof buf}));
}

TEST(VlanTag, WireRoundTrip) {
  VlanTag t;
  t.pcp = 5;
  t.dei = true;
  t.vid = 1234;
  t.inner_ethertype = 0x86DD;
  std::uint8_t buf[6];
  t.write(MutByteSpan{buf, 6});
  const auto back = VlanTag::read(ByteSpan{buf, 6});
  ASSERT_TRUE(back);
  EXPECT_EQ(back->pcp, 5);
  EXPECT_TRUE(back->dei);
  EXPECT_EQ(back->vid, 1234);
  EXPECT_EQ(back->inner_ethertype, 0x86DD);
}

TEST(Ipv4Header, WireRoundTrip) {
  Ipv4Header h;
  h.dscp = 46;
  h.ecn = 1;
  h.total_length = 1500;
  h.identification = 0x4242;
  h.dont_fragment = true;
  h.ttl = 17;
  h.protocol = 6;
  h.src = Ipv4Addr::of(10, 1, 2, 3);
  h.dst = Ipv4Addr::of(172, 16, 0, 9);
  h.finalize_checksum();
  std::uint8_t buf[Ipv4Header::kMinSize];
  h.write(buf);
  const auto back = Ipv4Header::read(buf);
  ASSERT_TRUE(back);
  EXPECT_EQ(back->dscp, 46);
  EXPECT_EQ(back->ecn, 1);
  EXPECT_EQ(back->total_length, 1500);
  EXPECT_TRUE(back->dont_fragment);
  EXPECT_FALSE(back->more_fragments);
  EXPECT_EQ(back->ttl, 17);
  EXPECT_EQ(back->src, h.src);
  EXPECT_EQ(back->dst, h.dst);
  EXPECT_EQ(back->checksum, h.checksum);
}

TEST(Ipv4Header, RejectsWrongVersion) {
  std::uint8_t buf[Ipv4Header::kMinSize] = {};
  buf[0] = 0x65;  // version 6
  EXPECT_FALSE(Ipv4Header::read(buf));
}

TEST(Ipv4Header, RejectsBadIhl) {
  std::uint8_t buf[Ipv4Header::kMinSize] = {};
  buf[0] = 0x43;  // version 4, ihl 3 (< 5)
  EXPECT_FALSE(Ipv4Header::read(buf));
}

TEST(Ipv6Header, WireRoundTrip) {
  Ipv6Header h;
  h.traffic_class = 0xAB;
  h.flow_label = 0xBEEF5;
  h.payload_length = 512;
  h.next_header = 17;
  h.hop_limit = 3;
  h.src.b[0] = 0x20;
  h.src.b[15] = 0x01;
  h.dst.b[0] = 0xFE;
  std::uint8_t buf[Ipv6Header::kSize];
  h.write(buf);
  const auto back = Ipv6Header::read(buf);
  ASSERT_TRUE(back);
  EXPECT_EQ(back->traffic_class, 0xAB);
  EXPECT_EQ(back->flow_label, 0xBEEF5u);
  EXPECT_EQ(back->payload_length, 512);
  EXPECT_EQ(back->next_header, 17);
  EXPECT_EQ(back->src, h.src);
  EXPECT_EQ(back->dst, h.dst);
}

TEST(ArpHeader, WireRoundTrip) {
  ArpHeader h;
  h.opcode = 2;
  h.sender_mac = MacAddr::from_index(3);
  h.sender_ip = Ipv4Addr::of(10, 0, 0, 1);
  h.target_mac = MacAddr::from_index(4);
  h.target_ip = Ipv4Addr::of(10, 0, 0, 2);
  std::uint8_t buf[ArpHeader::kSize];
  h.write(buf);
  const auto back = ArpHeader::read(buf);
  ASSERT_TRUE(back);
  EXPECT_EQ(back->opcode, 2);
  EXPECT_EQ(back->sender_mac, h.sender_mac);
  EXPECT_EQ(back->target_ip, h.target_ip);
}

TEST(TcpHeader, WireRoundTrip) {
  TcpHeader h;
  h.src_port = 443;
  h.dst_port = 51234;
  h.seq = 0xDEADBEEF;
  h.ack = 0x12345678;
  h.flags = TcpFlags::kSyn | TcpFlags::kAck;
  h.window = 29200;
  std::uint8_t buf[TcpHeader::kMinSize];
  h.write(buf);
  const auto back = TcpHeader::read(buf);
  ASSERT_TRUE(back);
  EXPECT_EQ(back->src_port, 443);
  EXPECT_EQ(back->seq, 0xDEADBEEFu);
  EXPECT_EQ(back->flags, TcpFlags::kSyn | TcpFlags::kAck);
  EXPECT_EQ(back->header_len(), 20u);
}

TEST(UdpHeader, WireRoundTrip) {
  UdpHeader h;
  h.src_port = 53;
  h.dst_port = 33000;
  h.length = 100;
  h.checksum = 0xBEEF;
  std::uint8_t buf[UdpHeader::kSize];
  h.write(buf);
  const auto back = UdpHeader::read(buf);
  ASSERT_TRUE(back);
  EXPECT_EQ(back->src_port, 53);
  EXPECT_EQ(back->dst_port, 33000);
  EXPECT_EQ(back->length, 100);
  EXPECT_EQ(back->checksum, 0xBEEF);
}

TEST(IcmpHeader, WireRoundTrip) {
  IcmpHeader h;
  h.type = 8;
  h.identifier = 0x1234;
  h.sequence = 7;
  std::uint8_t buf[IcmpHeader::kSize];
  h.write(buf);
  const auto back = IcmpHeader::read(buf);
  ASSERT_TRUE(back);
  EXPECT_EQ(back->type, 8);
  EXPECT_EQ(back->identifier, 0x1234);
  EXPECT_EQ(back->sequence, 7);
}

}  // namespace
}  // namespace osnt::net
