// In-plane measurement (DESIGN.md §14): the LatencyProbe's batch ring and
// per-class binning, the compare_bias() host-vs-in-plane report, and the
// regression this subsystem exists for — under a DMA stall the in-plane
// histograms keep the full delivered-frame population while the host-side
// capture path (HostCapture::latency_ns) silently loses every stalled
// record.
#include <gtest/gtest.h>

#include <string>

#include "osnt/common/stats.hpp"
#include "osnt/core/device.hpp"
#include "osnt/core/measure.hpp"
#include "osnt/fault/injector.hpp"
#include "osnt/fault/plan.hpp"
#include "osnt/hw/port.hpp"
#include "osnt/mon/latency_probe.hpp"
#include "osnt/sim/engine.hpp"
#include "osnt/telemetry/registry.hpp"

namespace osnt {
namespace {

using mon::LatencyProbe;

// ------------------------------------------------------------ probe core

TEST(LatencyProbe, EmptyProbeHasNoSamples) {
  const LatencyProbe p{};
  EXPECT_EQ(p.samples(), 0u);
  EXPECT_EQ(p.merged().count(), 0u);
  for (std::size_t k = 0; k < LatencyProbe::kClasses; ++k) {
    EXPECT_EQ(p.of_class(k).count(), 0u);
  }
}

TEST(LatencyProbe, ObserveBinsByClassAndWrapsTheMask) {
  LatencyProbe p;
  p.observe(100, 0);
  p.observe(200, 1);
  p.observe(300, 2);
  p.observe(400, 3);
  // Classes beyond kClasses wrap through the mask (4 -> 0, 5 -> 1), the
  // same truncation a DSCP field wider than the class bits would get.
  p.observe(500, 4);
  p.observe(600, 5);

  EXPECT_EQ(p.samples(), 6u);
  EXPECT_EQ(p.of_class(0).count(), 2u);
  EXPECT_EQ(p.of_class(1).count(), 2u);
  EXPECT_EQ(p.of_class(2).count(), 1u);
  EXPECT_EQ(p.of_class(3).count(), 1u);
  EXPECT_EQ(p.merged().count(), 6u);
  EXPECT_EQ(p.merged().sum(), 100u + 200 + 300 + 400 + 500 + 600);
}

TEST(LatencyProbe, AccessorsDrainThePartialBatch) {
  LatencyProbe p;
  // Fewer than kBatch samples: nothing has been retired yet, but every
  // accessor must still see them (drain-on-read).
  for (std::uint64_t i = 0; i < LatencyProbe::kBatch / 2; ++i) {
    p.observe(1000 + i, 0);
  }
  EXPECT_EQ(p.samples(), LatencyProbe::kBatch / 2);

  // Crossing the ring boundary several times keeps counts exact.
  for (std::uint64_t i = 0; i < 5 * LatencyProbe::kBatch; ++i) {
    p.observe(i, static_cast<std::uint8_t>(i));
  }
  EXPECT_EQ(p.samples(), LatencyProbe::kBatch / 2 + 5 * LatencyProbe::kBatch);
}

TEST(LatencyProbe, ObserveBatchMatchesLoopedObserve) {
  std::uint64_t vals[300];
  for (std::uint64_t i = 0; i < 300; ++i) vals[i] = i * 7 + 1;

  LatencyProbe batched;
  batched.observe_batch(vals, 300, 2);
  LatencyProbe looped;
  for (const std::uint64_t v : vals) looped.observe(v, 2);

  EXPECT_EQ(batched.samples(), looped.samples());
  EXPECT_EQ(batched.of_class(2).count(), looped.of_class(2).count());
  EXPECT_EQ(batched.of_class(2).sum(), looped.of_class(2).sum());
  EXPECT_EQ(batched.of_class(2).min(), looped.of_class(2).min());
  EXPECT_EQ(batched.of_class(2).max(), looped.of_class(2).max());
}

TEST(LatencyProbe, ClampsToTheRepresentableRange) {
  LatencyProbe p;
  p.observe(~std::uint64_t{0}, 1);  // would collide with the class bits
  EXPECT_EQ(p.of_class(1).max(), LatencyProbe::kMaxNs);
  EXPECT_EQ(p.of_class(1).count(), 1u);
}

TEST(LatencyProbe, ResetForgetsEverything) {
  LatencyProbe p;
  p.observe(42, 3);
  p.reset();
  EXPECT_EQ(p.samples(), 0u);
  EXPECT_EQ(p.of_class(3).count(), 0u);
}

TEST(LatencyProbe, FlushPublishesMergedAndPerClassHistograms) {
  const bool was_enabled = telemetry::enabled();
  telemetry::set_enabled(true);
  telemetry::registry().reset();

  LatencyProbe p;
  p.observe(100, 0);
  p.observe(200, 2);
  p.flush("test.");

  const std::string json = telemetry::registry().to_json();
  EXPECT_NE(json.find("test.rtt.ns"), std::string::npos);
  EXPECT_NE(json.find("test.rtt.class0.ns"), std::string::npos);
  EXPECT_NE(json.find("test.rtt.class2.ns"), std::string::npos);
  // Empty classes add no metric names.
  EXPECT_EQ(json.find("test.rtt.class1.ns"), std::string::npos);
  EXPECT_NE(json.find("test.rtt.samples"), std::string::npos);

  // An idle probe is silent: no names, no zero-count noise.
  telemetry::registry().reset();
  const LatencyProbe idle{};
  idle.flush("idle.");
  EXPECT_EQ(telemetry::registry().to_json().find("idle."), std::string::npos);

  telemetry::registry().reset();
  telemetry::set_enabled(was_enabled);
}

// ------------------------------------------------------------ bias report

TEST(LatencyProbe, CompareBiasReportsCoverageAndLoss) {
  LatencyProbe inplane;
  SampleSet host;
  for (std::uint64_t i = 1; i <= 1000; ++i) {
    inplane.observe(i, 0);
    if (i <= 400) host.add(static_cast<double>(i));  // DMA kept 40%
  }
  const mon::BiasReport rep = mon::compare_bias(inplane, host);
  EXPECT_EQ(rep.inplane_samples, 1000u);
  EXPECT_EQ(rep.host_samples, 400u);
  EXPECT_EQ(rep.lost_samples(), 600u);
  EXPECT_NEAR(rep.coverage, 0.4, 1e-12);
  // The host view only saw the fast 40% — its p99 undershoots badly.
  EXPECT_LT(rep.host_p99, rep.inplane_p99 / 2.0);
}

TEST(LatencyProbe, CompareBiasWithNoTrafficIsFullCoverage) {
  const LatencyProbe inplane{};
  const SampleSet host;
  const mon::BiasReport rep = mon::compare_bias(inplane, host);
  EXPECT_EQ(rep.lost_samples(), 0u);
  EXPECT_DOUBLE_EQ(rep.coverage, 1.0);
}

// ----------------------------------------------- dma_stall regression

/// The acceptance scenario: a mid-run DMA stall drops capture records on
/// the floor. The monitor-model probe sits ahead of the DMA stage, so its
/// histogram still covers 100% of delivered frames; the host-side
/// embedded-stamp population (RunResult::latency_ns, computed from DMA
/// survivors) loses exactly the stalled records.
TEST(LatencyProbe, InPlaneKeepsFullPopulationUnderDmaStall) {
  sim::Engine eng;
  core::OsntDevice osnt{eng};
  hw::connect(osnt.port(0), osnt.port(1));

  fault::FaultPlan plan;
  plan.seed = 7;
  // The stall must outlast the 1024-entry descriptor ring: at 8 Gb/s of
  // 128 B frames (~6.8 Mfps) a 500 us freeze queues ~3400 records.
  plan.dma_stall(500 * kPicosPerMicro, 500 * kPicosPerMicro);
  fault::Injector inj{eng, plan};
  inj.attach_device(osnt);
  inj.arm();

  core::TrafficSpec spec;
  spec.rate = gen::RateSpec::gbps(8.0);
  spec.frame_size = 128;
  spec.seed = 7;
  const core::RunResult r =
      core::run_capture_test(eng, osnt, 0, 1, spec, 2 * kPicosPerMilli);

  const LatencyProbe& probe = osnt.rx(1).rtt_probe();
  ASSERT_GT(r.tx_frames, 0u);
  ASSERT_GT(r.dma_drops, 0u) << "stall did not bite; scenario is vacuous";

  // In-plane: every frame the monitor saw is in the histogram.
  EXPECT_EQ(probe.samples(), r.rx_frames);
  // Host-side: only DMA survivors contribute latency samples.
  EXPECT_EQ(static_cast<std::uint64_t>(r.latency_ns.count()), r.captured);
  EXPECT_LT(static_cast<std::uint64_t>(r.latency_ns.count()),
            probe.samples());

  const mon::BiasReport rep = mon::compare_bias(probe, r.latency_ns);
  EXPECT_EQ(rep.lost_samples(), r.dma_drops);
  EXPECT_LT(rep.coverage, 1.0);
  EXPECT_GT(rep.coverage, 0.0);
  // Both views agree on the shape when nothing is congested beyond the
  // stall window: p50s land within one log2 bucket of each other.
  EXPECT_GT(rep.inplane_p50, 0.0);
  EXPECT_LT(rep.inplane_p50, 2.0 * rep.host_p50 + 1.0);
}

/// Without faults the two views cover the same population: coverage is
/// exactly 1.0 and the probe count equals the capture count.
TEST(LatencyProbe, HostAndInPlaneAgreeWithoutFaults) {
  sim::Engine eng;
  core::OsntDevice osnt{eng};
  hw::connect(osnt.port(0), osnt.port(1));

  core::TrafficSpec spec;
  spec.rate = gen::RateSpec::gbps(1.0);
  spec.frame_size = 256;
  spec.seed = 3;
  const core::RunResult r =
      core::run_capture_test(eng, osnt, 0, 1, spec, kPicosPerMilli);

  const LatencyProbe& probe = osnt.rx(1).rtt_probe();
  ASSERT_GT(r.rx_frames, 0u);
  EXPECT_EQ(probe.samples(), r.rx_frames);
  const mon::BiasReport rep = mon::compare_bias(probe, r.latency_ns);
  EXPECT_EQ(rep.lost_samples(), 0u);
  EXPECT_DOUBLE_EQ(rep.coverage, 1.0);
}

}  // namespace
}  // namespace osnt
