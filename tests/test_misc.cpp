// Remaining odds and ends: logging, packet description, engine scale,
// histogram rendering, describe() edge cases.
#include <gtest/gtest.h>

#include "osnt/common/log.hpp"
#include "osnt/common/stats.hpp"
#include "osnt/net/builder.hpp"
#include "osnt/net/packet.hpp"
#include "osnt/sim/engine.hpp"

namespace osnt {
namespace {

TEST(Log, LevelGateWorks) {
  const LogLevel old = log_level();
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  // Below threshold: the format function must not even run.
  bool formatted = false;
  auto fmt_probe = [&]() {
    formatted = true;
    return "x";
  };
  if (static_cast<int>(LogLevel::kDebug) >= static_cast<int>(log_level()))
    (void)fmt_probe();
  EXPECT_FALSE(formatted);
  set_log_level(old);
}

TEST(Log, FormatProducesPrintfOutput) {
  const std::string s = detail::format_log("x=%d y=%s", 42, "abc");
  EXPECT_EQ(s, "x=42 y=abc");
  EXPECT_EQ(detail::format_log("%s", ""), "");
}

TEST(Describe, CoversNonIpFrames) {
  net::PacketBuilder b;
  const auto arp = b.eth(net::MacAddr::from_index(1), net::MacAddr::broadcast())
                       .arp(1, net::MacAddr::from_index(1),
                            net::Ipv4Addr::of(1, 1, 1, 1), net::MacAddr{},
                            net::Ipv4Addr::of(1, 1, 1, 2))
                       .build();
  EXPECT_NE(net::describe(arp).find("arp"), std::string::npos);

  net::Packet runt;
  runt.data.assign(5, 0);
  EXPECT_NE(net::describe(runt).find("short"), std::string::npos);

  net::PacketBuilder b2;
  const auto raw = b2.eth(net::MacAddr::from_index(3), net::MacAddr::from_index(4),
                          0x88B5)
                       .payload_random(60, 1)
                       .build();
  const std::string d = net::describe(raw);
  EXPECT_NE(d.find("02:"), std::string::npos);  // falls back to MACs
}

TEST(Describe, TcpPorts) {
  net::PacketBuilder b;
  const auto tcp =
      b.eth(net::MacAddr::from_index(1), net::MacAddr::from_index(2))
          .ipv4(net::Ipv4Addr::of(1, 1, 1, 1), net::Ipv4Addr::of(2, 2, 2, 2),
                net::ipproto::kTcp)
          .tcp(443, 55555)
          .build();
  const std::string d = net::describe(tcp);
  EXPECT_NE(d.find("tcp"), std::string::npos);
  EXPECT_NE(d.find("443>55555"), std::string::npos);
}

TEST(Engine, HandlesLargeEventCounts) {
  sim::Engine eng;
  std::uint64_t fired = 0;
  // 100k events with colliding times: still strictly ordered & complete.
  for (int i = 0; i < 100'000; ++i)
    eng.schedule_at((i * 7919) % 1000, [&] { ++fired; });
  Picos prev = -1;
  // Interleave a monotonicity check through a watcher event each ms.
  eng.run();
  EXPECT_EQ(fired, 100'000u);
  EXPECT_EQ(eng.events_processed(), 100'000u);
  EXPECT_GE(eng.now(), prev);
}

TEST(Engine, CancelStormStaysConsistent) {
  sim::Engine eng;
  std::vector<sim::EventId> ids;
  int fired = 0;
  for (int i = 0; i < 1000; ++i)
    ids.push_back(eng.schedule_at(i, [&] { ++fired; }));
  for (std::size_t i = 0; i < ids.size(); i += 2) EXPECT_TRUE(eng.cancel(ids[i]));
  EXPECT_EQ(eng.pending(), 500u);
  eng.run();
  EXPECT_EQ(fired, 500);
  EXPECT_TRUE(eng.empty());
}

TEST(Histogram, QuantileOnEmptyAndSaturated) {
  Histogram h{0, 10, 5};
  EXPECT_EQ(h.quantile(0.5), 0.0);
  for (int i = 0; i < 10; ++i) h.add(100.0);  // everything overflows
  EXPECT_EQ(h.quantile(0.5), 10.0);  // clamps to hi
  Histogram lo{0, 10, 5};
  for (int i = 0; i < 10; ++i) lo.add(-5.0);
  EXPECT_EQ(lo.quantile(0.5), 0.0);  // clamps to lo
}

TEST(SampleSet, ClearResetsEverything) {
  SampleSet s;
  s.add(5);
  s.add(1);
  EXPECT_EQ(s.count(), 2u);
  s.clear();
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.mean(), 0.0);
  s.add(3);
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 3.0);
}

}  // namespace
}  // namespace osnt
