// 5-tuple extraction and flow-hash behaviour.
#include <gtest/gtest.h>

#include <unordered_set>

#include "osnt/net/builder.hpp"
#include "osnt/net/flow.hpp"

namespace osnt::net {
namespace {

Packet udp(std::uint32_t dst_last, std::uint16_t sport, std::uint16_t dport) {
  PacketBuilder b;
  return b.eth(MacAddr::from_index(1), MacAddr::from_index(2))
      .ipv4(Ipv4Addr::of(10, 0, 0, 1), Ipv4Addr::of(10, 0, 1, static_cast<std::uint8_t>(dst_last)),
            ipproto::kUdp)
      .udp(sport, dport)
      .build();
}

TEST(Flow, ExtractUdp) {
  const Packet p = udp(5, 1111, 2222);
  const auto t = extract_flow(p.bytes());
  ASSERT_TRUE(t);
  EXPECT_EQ(t->src_ip, Ipv4Addr::of(10, 0, 0, 1));
  EXPECT_EQ(t->dst_ip, Ipv4Addr::of(10, 0, 1, 5));
  EXPECT_EQ(t->src_port, 1111);
  EXPECT_EQ(t->dst_port, 2222);
  EXPECT_EQ(t->protocol, ipproto::kUdp);
}

TEST(Flow, ExtractTcp) {
  PacketBuilder b;
  const Packet p =
      b.eth(MacAddr::from_index(1), MacAddr::from_index(2))
          .ipv4(Ipv4Addr::of(1, 1, 1, 1), Ipv4Addr::of(2, 2, 2, 2),
                ipproto::kTcp)
          .tcp(80, 8080)
          .build();
  const auto t = extract_flow(p.bytes());
  ASSERT_TRUE(t);
  EXPECT_EQ(t->protocol, ipproto::kTcp);
  EXPECT_EQ(t->src_port, 80);
}

TEST(Flow, IcmpHasZeroPorts) {
  PacketBuilder b;
  const Packet p =
      b.eth(MacAddr::from_index(1), MacAddr::from_index(2))
          .ipv4(Ipv4Addr::of(1, 1, 1, 1), Ipv4Addr::of(2, 2, 2, 2),
                ipproto::kIcmp)
          .icmp_echo(1, 1)
          .build();
  const auto t = extract_flow(p.bytes());
  ASSERT_TRUE(t);
  EXPECT_EQ(t->src_port, 0);
  EXPECT_EQ(t->dst_port, 0);
}

TEST(Flow, NonIpHasNoFlow) {
  PacketBuilder b;
  const Packet p = b.eth(MacAddr::from_index(1), MacAddr::broadcast())
                       .arp(1, MacAddr::from_index(1), Ipv4Addr::of(1, 1, 1, 1),
                            MacAddr{}, Ipv4Addr::of(1, 1, 1, 2))
                       .build();
  EXPECT_FALSE(extract_flow(p.bytes()));
}

TEST(Flow, ReversedSwapsEndpoints) {
  const FiveTuple t{Ipv4Addr::of(1, 1, 1, 1), Ipv4Addr::of(2, 2, 2, 2), 10, 20,
                    6};
  const FiveTuple r = t.reversed();
  EXPECT_EQ(r.src_ip, t.dst_ip);
  EXPECT_EQ(r.src_port, t.dst_port);
  EXPECT_EQ(r.reversed(), t);
}

TEST(Flow, HashEqualForEqualTuples) {
  const Packet a = udp(5, 1111, 2222);
  const Packet b = udp(5, 1111, 2222);
  EXPECT_EQ(extract_flow(a.bytes())->hash(), extract_flow(b.bytes())->hash());
}

TEST(Flow, HashSpreadsAcrossFlows) {
  std::unordered_set<std::uint64_t> hashes;
  for (std::uint32_t i = 0; i < 200; ++i) {
    const auto t =
        extract_flow(udp(i % 250 + 1, static_cast<std::uint16_t>(1000 + i),
                         2222)
                         .bytes());
    ASSERT_TRUE(t);
    hashes.insert(t->hash());
  }
  EXPECT_EQ(hashes.size(), 200u);  // no collisions on this small set
}

TEST(Flow, StdHashUsable) {
  std::unordered_set<FiveTuple> set;
  set.insert(FiveTuple{Ipv4Addr::of(1, 1, 1, 1), Ipv4Addr::of(2, 2, 2, 2), 1,
                       2, 17});
  EXPECT_EQ(set.count(FiveTuple{Ipv4Addr::of(1, 1, 1, 1),
                                Ipv4Addr::of(2, 2, 2, 2), 1, 2, 17}),
            1u);
}

}  // namespace
}  // namespace osnt::net
