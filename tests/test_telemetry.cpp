// Telemetry subsystem: log2 histogram bucket/quantile math, registry
// semantics and JSON shape, engine/pipeline flush-on-destruction, trace
// recorder output, and — the property the whole shard-and-merge design
// exists for — bit-identical sim-only registry snapshots for any
// core::Runner worker count.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "osnt/core/device.hpp"
#include "osnt/core/measure.hpp"
#include "osnt/core/runner.hpp"
#include "osnt/sim/engine.hpp"
#include "osnt/telemetry/histogram.hpp"
#include "osnt/telemetry/registry.hpp"
#include "osnt/telemetry/series.hpp"
#include "osnt/telemetry/trace.hpp"

namespace osnt {
namespace {

using telemetry::Log2Histogram;

// ---------------------------------------------------------------- buckets

TEST(TelemetryHistogram, BucketEdges) {
  // Bucket 0 holds only zero; bucket b >= 1 holds [2^(b-1), 2^b).
  EXPECT_EQ(Log2Histogram::bucket_of(0), 0u);
  EXPECT_EQ(Log2Histogram::bucket_of(1), 1u);
  EXPECT_EQ(Log2Histogram::bucket_of(2), 2u);
  EXPECT_EQ(Log2Histogram::bucket_of(3), 2u);
  EXPECT_EQ(Log2Histogram::bucket_of(4), 3u);
  EXPECT_EQ(Log2Histogram::bucket_of(7), 3u);
  EXPECT_EQ(Log2Histogram::bucket_of(8), 4u);
  EXPECT_EQ(Log2Histogram::bucket_of(1023), 10u);
  EXPECT_EQ(Log2Histogram::bucket_of(1024), 11u);
  EXPECT_EQ(Log2Histogram::bucket_of(~std::uint64_t{0}), 64u);

  EXPECT_EQ(Log2Histogram::bucket_lo(0), 0u);
  EXPECT_EQ(Log2Histogram::bucket_hi(0), 0u);
  EXPECT_EQ(Log2Histogram::bucket_lo(1), 1u);
  EXPECT_EQ(Log2Histogram::bucket_hi(1), 1u);
  EXPECT_EQ(Log2Histogram::bucket_lo(10), 512u);
  EXPECT_EQ(Log2Histogram::bucket_hi(10), 1023u);
  EXPECT_EQ(Log2Histogram::bucket_lo(64), std::uint64_t{1} << 63);
  EXPECT_EQ(Log2Histogram::bucket_hi(64), ~std::uint64_t{0});

  // Every value lands inside its own bucket's [lo, hi] span.
  for (std::uint64_t v : {0ull, 1ull, 2ull, 3ull, 255ull, 256ull, 65535ull,
                          1ull << 40, ~0ull}) {
    const std::size_t b = Log2Histogram::bucket_of(v);
    EXPECT_GE(v, Log2Histogram::bucket_lo(b)) << v;
    EXPECT_LE(v, Log2Histogram::bucket_hi(b)) << v;
  }
}

TEST(TelemetryHistogram, EmptyHistogram) {
  const Log2Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.quantile(0.5), 0.0);
  EXPECT_EQ(h.quantile(0.99), 0.0);
}

TEST(TelemetryHistogram, SingleValueStreamIsExact) {
  // Min/max clamping makes quantiles exact when every sample is equal —
  // the common case for constant-latency paths.
  Log2Histogram h;
  for (int i = 0; i < 10; ++i) h.record(7);
  EXPECT_EQ(h.count(), 10u);
  EXPECT_EQ(h.sum(), 70u);
  EXPECT_EQ(h.min(), 7u);
  EXPECT_EQ(h.max(), 7u);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 7.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 7.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.999), 7.0);
}

TEST(TelemetryHistogram, SingleSampleClampsToObservedValue) {
  // One sample of 1000 lives in bucket [512, 1023]; interpolation alone
  // would report 512, the clamp reports the truth.
  Log2Histogram h;
  h.record(1000);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 1000.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 1000.0);
}

TEST(TelemetryHistogram, DenseUniformQuantiles) {
  // 1..1024 fills buckets 1..10 completely; rank interpolation across a
  // full bucket is then exact: quantile(q) == sorted-rank interpolation
  // q*(n-1), same convention as SampleSet.
  Log2Histogram h;
  for (std::uint64_t v = 1; v <= 1024; ++v) h.record(v);
  EXPECT_EQ(h.count(), 1024u);
  EXPECT_EQ(h.min(), 1u);
  EXPECT_EQ(h.max(), 1024u);
  EXPECT_NEAR(h.quantile(0.50), 512.5, 1e-9);    // rank 511.5 -> 512.5
  EXPECT_NEAR(h.quantile(0.99), 1013.77, 1e-9);  // rank 1012.77
  EXPECT_NEAR(h.quantile(0.999), 1022.977, 1e-9);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 1024.0);
}

TEST(TelemetryHistogram, MergeEqualsCombinedRecording) {
  Log2Histogram a;
  Log2Histogram b;
  Log2Histogram both;
  for (std::uint64_t v : {3ull, 900ull, 17ull}) {
    a.record(v);
    both.record(v);
  }
  for (std::uint64_t v : {0ull, 65536ull, 5ull}) {
    b.record(v);
    both.record(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), both.count());
  EXPECT_EQ(a.sum(), both.sum());
  EXPECT_EQ(a.min(), both.min());
  EXPECT_EQ(a.max(), both.max());
  for (std::size_t i = 0; i < Log2Histogram::kBuckets; ++i) {
    EXPECT_EQ(a.bucket_count(i), both.bucket_count(i)) << i;
  }
  EXPECT_DOUBLE_EQ(a.quantile(0.5), both.quantile(0.5));
}

TEST(TelemetryHistogram, MergeWithEmptyPreservesMinMax) {
  Log2Histogram a;
  a.record(42);
  Log2Histogram empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  EXPECT_EQ(a.min(), 42u);
  EXPECT_EQ(a.max(), 42u);
  empty.merge(a);
  EXPECT_EQ(empty.min(), 42u);
}

// --------------------------------------------------------------- registry

TEST(TelemetryRegistry, CounterGaugeHistogramBasics) {
  auto& reg = telemetry::registry();
  reg.reset();
  auto& c = reg.counter("test.reg.counter");
  c.inc();
  c.add(9);
  EXPECT_EQ(c.value(), 10u);
  // Lookup-or-create returns the same stable object.
  EXPECT_EQ(&reg.counter("test.reg.counter"), &c);

  auto& g = reg.gauge("test.reg.gauge");
  g.set(5);
  g.update_max(3);
  EXPECT_EQ(g.value(), 5);
  g.update_max(8);
  EXPECT_EQ(g.value(), 8);

  auto& h = reg.histogram("test.reg.hist");
  h.record(100);
  Log2Histogram shard;
  shard.record(200);
  h.merge(shard);
  const Log2Histogram snap = h.snapshot();
  EXPECT_EQ(snap.count(), 2u);
  EXPECT_EQ(snap.sum(), 300u);
  EXPECT_EQ(snap.min(), 100u);
  EXPECT_EQ(snap.max(), 200u);
}

TEST(TelemetryRegistry, JsonShapeAndWallFiltering) {
  auto& reg = telemetry::registry();
  reg.reset();
  reg.counter("test.json.sim_counter").add(3);
  reg.counter("test.json.busy_ns.wall").add(12345);
  reg.gauge("test.json.jobs.wall").set(4);
  reg.histogram("test.json.hist").record(7);

  const std::string all = reg.to_json(telemetry::Snapshot::kAll);
  EXPECT_NE(all.find("\"counters\""), std::string::npos);
  EXPECT_NE(all.find("\"gauges\""), std::string::npos);
  EXPECT_NE(all.find("\"histograms\""), std::string::npos);
  EXPECT_NE(all.find("\"test.json.sim_counter\": 3"), std::string::npos);
  EXPECT_NE(all.find("test.json.busy_ns.wall"), std::string::npos);
  EXPECT_NE(all.find("\"p50\": 7"), std::string::npos);
  EXPECT_NE(all.find("\"buckets\": [[3, 1]]"), std::string::npos);

  // kSimOnly drops every name containing the "wall" token, counters and
  // gauges alike, and keeps everything else byte-identical material.
  const std::string sim = reg.to_json(telemetry::Snapshot::kSimOnly);
  EXPECT_NE(sim.find("test.json.sim_counter"), std::string::npos);
  EXPECT_EQ(sim.find("wall"), std::string::npos);
}

TEST(TelemetryRegistry, ResetZeroesInPlace) {
  auto& reg = telemetry::registry();
  reg.reset();
  auto& c = reg.counter("test.reset.counter");
  c.add(99);
  reg.histogram("test.reset.hist").record(5);
  reg.reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(reg.histogram("test.reset.hist").snapshot().count(), 0u);
  // Addresses survive the reset.
  EXPECT_EQ(&reg.counter("test.reset.counter"), &c);
}

TEST(TelemetryRegistry, DisabledSkipsEngineFlush) {
  auto& reg = telemetry::registry();
  reg.reset();
  telemetry::set_enabled(false);
  {
    sim::Engine eng;
    eng.schedule_at(10, [] {});
    eng.run();
  }
  telemetry::set_enabled(true);
  EXPECT_EQ(reg.counter("sim.engine.events_fired").value(), 0u);
}

// ----------------------------------------------------------- engine flush

TEST(TelemetryEngine, FlushesCountersOnDestruction) {
  auto& reg = telemetry::registry();
  reg.reset();
  {
    sim::Engine eng;
    std::vector<sim::EventId> ids;
    for (int i = 0; i < 10; ++i) {
      ids.push_back(eng.schedule_at(static_cast<Picos>(i * 100), [] {}));
    }
    EXPECT_TRUE(eng.cancel(ids[3]));
    EXPECT_TRUE(eng.cancel(ids[7]));
    eng.run();
    EXPECT_EQ(eng.events_processed(), 8u);
    EXPECT_EQ(eng.events_cancelled(), 2u);
    EXPECT_GE(eng.live_high_water(), 10u);
    EXPECT_GE(eng.heap_high_water(), 10u);
    EXPECT_GE(eng.slab_slots(), 10u);
  }  // dtor merges the shard
  EXPECT_EQ(reg.counter("sim.engine.engines").value(), 1u);
  EXPECT_EQ(reg.counter("sim.engine.events_fired").value(), 8u);
  EXPECT_EQ(reg.counter("sim.engine.events_cancelled").value(), 2u);
  EXPECT_GE(reg.gauge("sim.engine.live_high_water").value(), 10);
  // Routing-dependent internals carry the "impl" marker so kSimOnly
  // snapshots stay byte-identical across timer-routing configs.
  EXPECT_GE(reg.gauge("sim.engine.impl.slab_slots").value(), 10);
  const std::string sim = reg.to_json(telemetry::Snapshot::kSimOnly);
  EXPECT_EQ(sim.find("slab_slots"), std::string::npos);
  EXPECT_EQ(sim.find("heap_high_water"), std::string::npos);
  EXPECT_NE(sim.find("live_high_water"), std::string::npos);
}

TEST(TelemetryEngine, HandlerTimingFlushesWallCounters) {
  auto& reg = telemetry::registry();
  reg.reset();
  {
    sim::Engine eng;
    eng.set_handler_timing(true);
    for (int i = 0; i < 100; ++i) {
      eng.schedule_at(static_cast<Picos>(i), [] {
        volatile int sink = 0;
        for (int j = 0; j < 100; ++j) sink = sink + j;
      });
    }
    eng.run();
  }
  // Wall-domain by construction, so the name carries the marker and the
  // sim-only snapshot drops it.
  EXPECT_GT(reg.counter("sim.engine.handler_ns.wall.generic").value(), 0u);
  const std::string sim = reg.to_json(telemetry::Snapshot::kSimOnly);
  EXPECT_EQ(sim.find("handler_ns"), std::string::npos);
}

TEST(TelemetryEngine, CategoryScopeTagsTraceTracks) {
  telemetry::TraceRecorder rec;
  sim::Engine eng;
  eng.set_trace(&rec);
  EXPECT_EQ(rec.track_count(), sim::kEventCategoryCount);
  eng.schedule_at(10, [] {});  // kGeneric
  {
    const sim::Engine::CategoryScope cat(eng, sim::EventCategory::kGen);
    eng.schedule_at(20, [] {});
  }
  {
    const sim::Engine::CategoryScope cat(eng, sim::EventCategory::kMon);
    eng.schedule_at(30, [] {});
  }
  eng.run();
  EXPECT_EQ(rec.size(), 3u);

  std::ostringstream os;
  rec.write_chrome_json(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"engine/generic\""), std::string::npos);
  EXPECT_NE(json.find("\"engine/gen\""), std::string::npos);
  EXPECT_NE(json.find("\"engine/mon\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"gen\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"mon\""), std::string::npos);
}

// ---------------------------------------------------------------- tracing

TEST(TelemetryTrace, ChromeJsonFormat) {
  telemetry::TraceRecorder rec;
  const auto t0 = rec.track("alpha");
  const auto t1 = rec.track("beta");
  EXPECT_EQ(rec.track("alpha"), t0);  // dedup by name
  EXPECT_EQ(rec.track_count(), 2u);
  rec.complete(t0, "slice", 1'000'000, 500'000);  // 1 us + 0.5 us in picos
  rec.instant(t1, "mark", 2'000'000);
  EXPECT_EQ(rec.size(), 2u);

  std::ostringstream os;
  rec.write_chrome_json(os);
  const std::string json = os.str();
  // Array shape with metadata first.
  EXPECT_EQ(json.front(), '[');
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("{\"name\": \"alpha\"}"), std::string::npos);
  EXPECT_NE(json.find("{\"name\": \"beta\"}"), std::string::npos);
  // Sim picos render as microseconds with full precision.
  EXPECT_NE(json.find("\"ts\": 1.000000, \"dur\": 0.500000"),
            std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"i\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\": 2.000000, \"s\": \"t\""), std::string::npos);
}

TEST(TelemetryTrace, CapDropsAndCounts) {
  telemetry::TraceRecorder rec(/*max_events=*/4);
  const auto t = rec.track("t");
  for (int i = 0; i < 10; ++i) rec.complete(t, "e", i, 0);
  EXPECT_EQ(rec.size(), 4u);
  EXPECT_EQ(rec.dropped(), 6u);
  rec.clear();
  EXPECT_EQ(rec.size(), 0u);
  EXPECT_EQ(rec.dropped(), 0u);
  EXPECT_EQ(rec.track_count(), 1u);  // tracks survive clear()
}

TEST(TelemetryTrace, IdenticalRecordingsRenderIdenticalBytes) {
  const auto render = [] {
    telemetry::TraceRecorder rec;
    const auto t = rec.track("x");
    rec.complete(t, "a", 123'456'789, 42);
    rec.instant(t, "b", 987'654'321);
    std::ostringstream os;
    rec.write_chrome_json(os);
    return os.str();
  };
  EXPECT_EQ(render(), render());
}

// -------------------------------------------- end-to-end pipeline metrics

core::RunResult run_device_scenario() {
  sim::Engine eng;
  core::OsntDevice dev{eng};
  hw::connect(dev.port(0), dev.port(1));
  core::TrafficSpec spec;
  spec.rate = gen::RateSpec::gbps(3.0);
  spec.frame_size = 256;
  spec.seed = 7;
  return core::run_capture_test(eng, dev, 0, 1, spec, kPicosPerMilli);
}

TEST(TelemetryPipelines, DeviceRunPopulatesAllFamilies) {
  auto& reg = telemetry::registry();
  reg.reset();
  const auto r = run_device_scenario();
  ASSERT_GT(r.tx_frames, 0u);

  // Pipeline shards flushed when the device's engines/pipelines died.
  EXPECT_EQ(reg.counter("gen.tx.frames_scheduled").value(), r.tx_frames);
  EXPECT_EQ(reg.counter("mon.rx.frames_seen").value(), r.rx_frames);
  EXPECT_EQ(reg.counter("hw.dma.records_delivered").value(), r.captured);
  EXPECT_GT(reg.counter("sim.engine.events_fired").value(), 0u);

  // The sim-latency histogram agrees with the measurement layer's count.
  const auto lat = reg.histogram("mon.rx.latency_ns").snapshot();
  EXPECT_GT(lat.count(), 0u);
  const auto bytes = reg.histogram("gen.tx.frame_bytes").snapshot();
  EXPECT_EQ(bytes.count(), r.tx_frames);
  EXPECT_EQ(bytes.min(), 256u);
  EXPECT_EQ(bytes.max(), 256u);
}

// ------------------------------------------------- runner merge determinism

std::string sim_snapshot_for_jobs(std::size_t jobs) {
  auto& reg = telemetry::registry();
  reg.reset();
  core::TrialPlan plan;
  plan.points.resize(4);
  for (std::size_t i = 0; i < plan.points.size(); ++i) {
    plan.points[i].seed = 10 + i;
    plan.points[i].load_fraction = 0.2 + 0.1 * static_cast<double>(i);
  }
  plan.run = [](const core::TrialPoint& p) {
    sim::Engine eng;
    core::OsntDevice dev{eng};
    hw::connect(dev.port(0), dev.port(1));
    core::TrafficSpec spec;
    spec.rate = gen::RateSpec::line_rate(p.load_fraction);
    spec.frame_size = 512;
    spec.seed = p.seed;
    const auto r =
        core::run_capture_test(eng, dev, 0, 1, spec, kPicosPerMilli / 2);
    core::TrialStats s;
    s.tx_frames = r.tx_frames;
    s.rx_frames = r.rx_frames;
    return s;
  };
  core::RunnerConfig cfg;
  cfg.jobs = jobs;
  (void)core::Runner{cfg}.run(plan);
  return reg.to_json(telemetry::Snapshot::kSimOnly);
}

TEST(TelemetryRunner, SimSnapshotsByteIdenticalAcrossJobs) {
  // The acceptance property: counters, gauges, and histograms derived from
  // simulated time must render identical bytes for any worker count. Wall
  // metrics (which do vary) are excluded by name convention.
  const std::string serial = sim_snapshot_for_jobs(1);
  EXPECT_GT(serial.size(), 0u);
  EXPECT_NE(serial.find("gen.tx.frames_scheduled"), std::string::npos);
  EXPECT_NE(serial.find("core.runner.trials"), std::string::npos);
  EXPECT_EQ(serial, sim_snapshot_for_jobs(4));
  EXPECT_EQ(serial, sim_snapshot_for_jobs(0));  // hardware_concurrency
}

TEST(TelemetryRunner, WallMetricsPresentInFullSnapshot) {
  (void)sim_snapshot_for_jobs(2);
  auto& reg = telemetry::registry();
  EXPECT_EQ(reg.counter("core.runner.plans").value(), 1u);
  EXPECT_EQ(reg.counter("core.runner.trials").value(), 4u);
  EXPECT_EQ(reg.gauge("core.runner.jobs.wall").value(), 2);
  EXPECT_GT(reg.counter("core.runner.busy_ns.wall").value(), 0u);
  EXPECT_GT(reg.counter("core.runner.span_ns.wall").value(), 0u);
  EXPECT_EQ(reg.histogram("core.runner.trial_us.wall").snapshot().count(), 4u);
  const std::string all = reg.to_json(telemetry::Snapshot::kAll);
  EXPECT_NE(all.find("core.runner.utilization_pct.wall"), std::string::npos);
}

// ------------------------------------------------------- time series

/// A minimal sampled scenario: a cumulative counter bumped by scheduled
/// events and a cumulative histogram fed alongside it, sampled every
/// 100 ps over a 300 ps horizon with one straggler event at 350 ps.
telemetry::SeriesData sampled_scenario(bool wheel) {
  sim::Engine eng;
  eng.set_wheel_enabled(wheel);
  std::uint64_t frames = 0;
  Log2Histogram lat;
  // Interval 1: two events. Interval 2: none. Interval 3: one. Tail: one.
  for (const Picos t : {30, 60, 250, 350}) {
    eng.schedule_at(t, [&frames, &lat, t] {
      ++frames;
      lat.record(static_cast<std::uint64_t>(t));
    });
  }
  telemetry::TimeSeries ts{100};
  ts.add_counter("frames", [&frames] { return frames; });
  ts.add_histogram("lat.ns", [&lat] { return lat; });
  ts.attach(eng, 300);
  eng.run();
  ts.finish();
  return ts.take();
}

TEST(TelemetrySeries, CounterAndHistogramDeltasPerInterval) {
  const telemetry::SeriesData d = sampled_scenario(true);
  EXPECT_EQ(d.interval, 100);
  EXPECT_EQ(d.trials, 1u);
  EXPECT_EQ(d.intervals(), 4u);
  EXPECT_EQ(d.tail, 50);  // run ended at 350, last full tick at 300

  const auto& frames = d.channels.at("frames");
  ASSERT_EQ(frames.kind, telemetry::SeriesData::Channel::Kind::kCounter);
  ASSERT_EQ(frames.deltas.size(), 4u);
  EXPECT_EQ(frames.deltas[0], 2u);  // events at 30, 60
  EXPECT_EQ(frames.deltas[1], 0u);  // quiet interval
  EXPECT_EQ(frames.deltas[2], 1u);  // event at 250
  EXPECT_EQ(frames.deltas[3], 1u);  // tail straggler at 350

  const auto& lat = d.channels.at("lat.ns");
  ASSERT_EQ(lat.kind, telemetry::SeriesData::Channel::Kind::kHistogram);
  ASSERT_EQ(lat.hist.size(), 4u);
  EXPECT_EQ(lat.hist[0].count, 2u);
  EXPECT_EQ(lat.hist[0].sum, 90u);
  EXPECT_EQ(lat.hist[1].count, 0u);
  EXPECT_EQ(lat.hist[2].count, 1u);
  EXPECT_EQ(lat.hist[3].sum, 350u);
}

TEST(TelemetrySeries, JsonShapeAndDeterminism) {
  const telemetry::SeriesData d = sampled_scenario(true);
  const std::string json = d.to_json();
  EXPECT_NE(json.find("\"osnt.series.v1\""), std::string::npos);
  EXPECT_NE(json.find("\"interval_ps\": 100"), std::string::npos);
  EXPECT_NE(json.find("\"tail_ps\": 50"), std::string::npos);
  EXPECT_NE(json.find("\"trials\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"intervals\": 4"), std::string::npos);
  EXPECT_NE(json.find("\"channels\""), std::string::npos);
  EXPECT_NE(json.find("\"delta\": [2, 0, 1, 1]"), std::string::npos);
  EXPECT_NE(json.find("\"rate_per_s\""), std::string::npos);
  EXPECT_NE(json.find("\"count\": [2, 0, 1, 1]"), std::string::npos);
  EXPECT_NE(json.find("\"p50\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
  // Same scenario, same bytes.
  EXPECT_EQ(json, sampled_scenario(true).to_json());
}

TEST(TelemetrySeries, WheelAndHeapTimersProduceIdenticalSeries) {
  // The sampler's ticks ride the bulk-timer path; whether they land in the
  // timing wheel or spill to the heap must not change a single byte.
  EXPECT_EQ(sampled_scenario(true).to_json(),
            sampled_scenario(false).to_json());
}

TEST(TelemetrySeries, MergeIsCommutativeAndUnionsChannels) {
  const telemetry::SeriesData a = sampled_scenario(true);

  telemetry::SeriesData b = sampled_scenario(true);
  {
    // Give b a channel a doesn't have, and vice versa by construction.
    telemetry::SeriesData::Channel extra;
    extra.kind = telemetry::SeriesData::Channel::Kind::kCounter;
    extra.deltas = {5, 6};
    b.channels["only.in.b"] = extra;
  }

  telemetry::SeriesData ab = a;
  ab.merge_from(b);
  telemetry::SeriesData ba = b;
  ba.merge_from(a);
  EXPECT_EQ(ab.to_json(), ba.to_json());

  EXPECT_EQ(ab.trials, 2u);
  EXPECT_EQ(ab.channels.at("frames").deltas[0], 4u);  // 2 + 2
  EXPECT_EQ(ab.channels.at("lat.ns").hist[3].sum, 700u);
  // A channel present on only one side survives the union untouched;
  // intervals() still reports the longest channel.
  ASSERT_EQ(ab.channels.at("only.in.b").deltas.size(), 2u);
  EXPECT_EQ(ab.channels.at("only.in.b").deltas[1], 6u);
  EXPECT_EQ(ab.intervals(), 4u);
}

TEST(TelemetrySeries, MergeIntoEmptyAdoptsIntervalAndTail) {
  telemetry::SeriesData empty;
  empty.merge_from(sampled_scenario(true));
  EXPECT_EQ(empty.interval, 100);
  EXPECT_EQ(empty.tail, 50);
  EXPECT_EQ(empty.trials, 1u);
  EXPECT_EQ(empty.to_json(), sampled_scenario(true).to_json());
}

}  // namespace
}  // namespace osnt
