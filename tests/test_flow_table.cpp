// Flow table: OF 1.0 add/modify/delete semantics, priority ordering,
// counters, timeouts, capacity.
#include <gtest/gtest.h>

#include "osnt/openflow/flow_table.hpp"

namespace osnt::openflow {
namespace {

FlowMod add_rule(std::uint32_t dst, std::uint16_t prio, std::uint16_t out) {
  FlowMod fm;
  fm.match = OfMatch::exact_5tuple(1, dst, 17, 10, 20);
  fm.priority = prio;
  fm.actions = {ActionOutput{out}};
  return fm;
}

OfMatch pkt(std::uint32_t dst) {
  OfMatch m;
  m.wildcards = 0;
  m.in_port = 1;
  m.dl_type = 0x0800;
  m.nw_proto = 17;
  m.nw_src = 1;
  m.nw_dst = dst;
  m.tp_src = 10;
  m.tp_dst = 20;
  return m;
}

TEST(FlowTable, AddAndLookup) {
  FlowTable t;
  EXPECT_EQ(t.apply(add_rule(5, 100, 2), 0), FlowTable::ModResult::kAdded);
  EXPECT_EQ(t.size(), 1u);
  const auto* e = t.lookup(pkt(5), 0);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(std::get<ActionOutput>(e->actions[0]).port, 2);
  EXPECT_EQ(t.lookup(pkt(6), 0), nullptr);
  EXPECT_EQ(t.misses(), 1u);
}

TEST(FlowTable, HigherPriorityWins) {
  FlowTable t;
  FlowMod lo;
  lo.match = OfMatch::any();
  lo.priority = 10;
  lo.actions = {ActionOutput{1}};
  FlowMod hi = add_rule(5, 1000, 9);
  t.apply(lo, 0);
  t.apply(hi, 0);
  EXPECT_EQ(std::get<ActionOutput>(t.lookup(pkt(5), 0)->actions[0]).port, 9);
  EXPECT_EQ(std::get<ActionOutput>(t.lookup(pkt(6), 0)->actions[0]).port, 1);
}

TEST(FlowTable, AddIdenticalReplacesAndResetsCounters) {
  FlowTable t;
  t.apply(add_rule(5, 100, 2), 0);
  (void)t.lookup(pkt(5), 0, 100);
  EXPECT_EQ(t.entries()[0].packet_count, 1u);
  EXPECT_EQ(t.apply(add_rule(5, 100, 3), 50), FlowTable::ModResult::kAdded);
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(t.entries()[0].packet_count, 0u);
  EXPECT_EQ(std::get<ActionOutput>(t.entries()[0].actions[0]).port, 3);
}

TEST(FlowTable, ModifyPreservesCounters) {
  FlowTable t;
  t.apply(add_rule(5, 100, 2), 0);
  (void)t.lookup(pkt(5), 0, 100);
  FlowMod mod = add_rule(5, 100, 7);
  mod.command = FlowModCommand::kModifyStrict;
  EXPECT_EQ(t.apply(mod, 10), FlowTable::ModResult::kModified);
  EXPECT_EQ(t.entries()[0].packet_count, 1u);  // preserved
  EXPECT_EQ(std::get<ActionOutput>(t.entries()[0].actions[0]).port, 7);
}

TEST(FlowTable, ModifyNoMatchBehavesLikeAdd) {
  FlowTable t;
  FlowMod mod = add_rule(5, 100, 7);
  mod.command = FlowModCommand::kModify;
  EXPECT_EQ(t.apply(mod, 0), FlowTable::ModResult::kAdded);
  EXPECT_EQ(t.size(), 1u);
}

TEST(FlowTable, NonStrictModifyHitsCoveredRules) {
  FlowTable t;
  t.apply(add_rule(5, 100, 2), 0);
  t.apply(add_rule(6, 100, 2), 0);
  FlowMod mod;
  mod.match = OfMatch::any();  // covers both
  mod.command = FlowModCommand::kModify;
  mod.actions = {ActionOutput{8}};
  EXPECT_EQ(t.apply(mod, 0), FlowTable::ModResult::kModified);
  for (const auto& e : t.entries())
    EXPECT_EQ(std::get<ActionOutput>(e.actions[0]).port, 8);
}

TEST(FlowTable, DeleteStrictOnlyExact) {
  FlowTable t;
  t.apply(add_rule(5, 100, 2), 0);
  t.apply(add_rule(5, 200, 2), 0);
  FlowMod del = add_rule(5, 100, 0);
  del.command = FlowModCommand::kDeleteStrict;
  std::vector<FlowEntry> removed;
  EXPECT_EQ(t.apply(del, 0, &removed), FlowTable::ModResult::kRemoved);
  EXPECT_EQ(t.size(), 1u);
  ASSERT_EQ(removed.size(), 1u);
  EXPECT_EQ(removed[0].priority, 100);
}

TEST(FlowTable, DeleteNonStrictSweepsCovered) {
  FlowTable t;
  for (std::uint32_t d = 1; d <= 5; ++d) t.apply(add_rule(d, 100, 2), 0);
  FlowMod del;
  del.match = OfMatch::any();
  del.command = FlowModCommand::kDelete;
  EXPECT_EQ(t.apply(del, 0), FlowTable::ModResult::kRemoved);
  EXPECT_TRUE(t.empty());
}

TEST(FlowTable, DeleteFiltersByOutPort) {
  FlowTable t;
  t.apply(add_rule(1, 100, 2), 0);
  t.apply(add_rule(2, 100, 3), 0);
  FlowMod del;
  del.match = OfMatch::any();
  del.command = FlowModCommand::kDelete;
  del.out_port = 3;  // only rules outputting to port 3
  t.apply(del, 0);
  ASSERT_EQ(t.size(), 1u);
  EXPECT_EQ(std::get<ActionOutput>(t.entries()[0].actions[0]).port, 2);
}

TEST(FlowTable, DeleteNothingIsNoOp) {
  FlowTable t;
  FlowMod del;
  del.match = OfMatch::any();
  del.command = FlowModCommand::kDelete;
  EXPECT_EQ(t.apply(del, 0), FlowTable::ModResult::kNoOp);
}

TEST(FlowTable, TableFull) {
  FlowTableConfig cfg;
  cfg.max_entries = 3;
  FlowTable t{cfg};
  for (std::uint32_t d = 1; d <= 3; ++d)
    EXPECT_EQ(t.apply(add_rule(d, 100, 1), 0), FlowTable::ModResult::kAdded);
  EXPECT_EQ(t.apply(add_rule(9, 100, 1), 0), FlowTable::ModResult::kTableFull);
}

TEST(FlowTable, CheckOverlapRejects) {
  FlowTable t;
  t.apply(add_rule(5, 100, 1), 0);
  FlowMod overlapping;
  overlapping.match = OfMatch::any();  // covers the installed rule
  overlapping.priority = 100;
  overlapping.flags = off::kCheckOverlap;
  EXPECT_EQ(t.apply(overlapping, 0), FlowTable::ModResult::kOverlap);
  // Different priority: no overlap check failure.
  overlapping.priority = 50;
  EXPECT_EQ(t.apply(overlapping, 0), FlowTable::ModResult::kAdded);
}

TEST(FlowTable, IdleTimeoutExpires) {
  FlowTable t;
  FlowMod fm = add_rule(5, 100, 1);
  fm.idle_timeout = 2;  // seconds
  t.apply(fm, 0);
  (void)t.lookup(pkt(5), 1 * kPicosPerSec, 64);  // used at t=1s
  EXPECT_TRUE(t.expire(2 * kPicosPerSec).empty());   // 1 s idle: keep
  const auto removed = t.expire(4 * kPicosPerSec);   // 3 s idle: gone
  ASSERT_EQ(removed.size(), 1u);
  EXPECT_TRUE(t.empty());
}

TEST(FlowTable, HardTimeoutExpiresEvenWhenUsed) {
  FlowTable t;
  FlowMod fm = add_rule(5, 100, 1);
  fm.hard_timeout = 1;
  t.apply(fm, 0);
  (void)t.lookup(pkt(5), kPicosPerSec - 1, 64);
  EXPECT_EQ(t.expire(kPicosPerSec + 1).size(), 1u);
}

TEST(FlowTable, CountersAccumulate) {
  FlowTable t;
  t.apply(add_rule(5, 100, 1), 0);
  (void)t.lookup(pkt(5), 0, 100);
  (void)t.lookup(pkt(5), 0, 200);
  EXPECT_EQ(t.entries()[0].packet_count, 2u);
  EXPECT_EQ(t.entries()[0].byte_count, 300u);
  EXPECT_EQ(t.lookups(), 2u);
}

TEST(FlowTable, CollectStatsFiltersByMatchAndPort) {
  FlowTable t;
  t.apply(add_rule(1, 100, 2), 0);
  t.apply(add_rule(2, 100, 3), 0);
  FlowStatsRequest req;
  req.match = OfMatch::any();
  EXPECT_EQ(t.collect_stats(req).size(), 2u);
  req.out_port = 3;
  EXPECT_EQ(t.collect_stats(req).size(), 1u);
}

}  // namespace
}  // namespace osnt::openflow
