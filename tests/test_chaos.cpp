// Chaos acceptance: deterministic fault injection composed with the
// hardened runner. The contract: a plan with mid-run faults completes
// with partial results; retries replay bit-identically from rederived
// seeds; watchdogs kill livelocked trials without taking siblings down;
// and sim-only telemetry is byte-identical for any --jobs value.
#include <gtest/gtest.h>

#include <functional>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "osnt/core/device.hpp"
#include "osnt/core/measure.hpp"
#include "osnt/core/runner.hpp"
#include "osnt/fault/injector.hpp"
#include "osnt/fault/plan.hpp"
#include "osnt/hw/port.hpp"
#include "osnt/sim/engine.hpp"
#include "osnt/telemetry/registry.hpp"

namespace osnt::core {
namespace {

/// The standard chaos workload: back-to-back testbed, 1 Gb/s for 2 ms of
/// sim time, with a mid-run link flap, BER window, and DMA stall injected
/// from one shared plan. Returns the full capture-test result.
RunResult faulted_capture_run(std::uint64_t seed) {
  sim::Engine eng;
  core::OsntDevice osnt{eng};
  hw::connect(osnt.port(0), osnt.port(1));

  fault::FaultPlan plan;
  plan.seed = seed;
  plan.link_flap(500 * kPicosPerMicro, 100 * kPicosPerMicro, 0)
      .ber_window(kPicosPerMilli, 200 * kPicosPerMicro, 1e-5,
                  50 * kPicosPerMicro)
      .dma_stall(1500 * kPicosPerMicro, 200 * kPicosPerMicro);
  fault::Injector inj{eng, plan};
  inj.attach_device(osnt);
  inj.arm();

  TrafficSpec spec;
  spec.rate = gen::RateSpec::gbps(1.0);
  spec.frame_size = 256;
  spec.seed = seed;
  const auto r = run_capture_test(eng, osnt, 0, 1, spec, 2 * kPicosPerMilli);
  EXPECT_EQ(inj.injected_total(), 3u);
  EXPECT_EQ(inj.skipped(), 0u);
  return r;
}

TEST(Chaos, FaultedRunActuallyDegrades) {
  const auto r = faulted_capture_run(7);
  EXPECT_GT(r.tx_frames, 0u);
  EXPECT_LT(r.rx_frames, r.tx_frames);  // the flap + BER window cost frames
  EXPECT_GT(r.rx_frames, 0u);           // but the run completed
}

TEST(Chaos, FaultedRunIsBitIdenticalAcrossReplays) {
  const auto a = faulted_capture_run(7);
  const auto b = faulted_capture_run(7);
  EXPECT_EQ(a.tx_frames, b.tx_frames);
  EXPECT_EQ(a.rx_frames, b.rx_frames);
  EXPECT_EQ(a.captured, b.captured);
  EXPECT_EQ(a.dma_drops, b.dma_drops);
  ASSERT_EQ(a.latency_ns.count(), b.latency_ns.count());
  for (std::size_t i = 0; i < a.latency_ns.count(); ++i)
    EXPECT_EQ(a.latency_ns.samples()[i], b.latency_ns.samples()[i]);
  // A different seed is a genuinely different run: the BER stream picks
  // different victims, so the latency sample sequence diverges even when
  // aggregate counts coincide.
  const auto c = faulted_capture_run(8);
  bool identical = a.latency_ns.count() == c.latency_ns.count();
  if (identical) {
    for (std::size_t i = 0; i < a.latency_ns.count(); ++i) {
      if (a.latency_ns.samples()[i] != c.latency_ns.samples()[i]) {
        identical = false;
        break;
      }
    }
  }
  EXPECT_FALSE(identical);
}

/// A faulted trial whose first attempt at slot 1 fails: the injected
/// outage plus a strict loss gate models "the fault broke this attempt".
/// The retry reruns the same slot at the rederived seed.
TrialPlan flaky_faulted_plan(std::size_t n) {
  TrialPlan plan;
  plan.points.resize(n);
  for (std::size_t i = 0; i < n; ++i) plan.points[i].seed = 40 + i;
  plan.run = [](const TrialPoint& pt) {
    const auto r = faulted_capture_run(pt.seed);
    if (pt.index == 1 && pt.attempt == 0)
      throw std::runtime_error("loss gate tripped under injected faults");
    TrialStats s;
    s.tx_frames = r.tx_frames;
    s.rx_frames = r.rx_frames;
    s.offered_gbps = r.offered_gbps;
    s.latency_ns = r.latency_ns;
    return s;
  };
  return plan;
}

TEST(Chaos, RetriedSlotReplaysBitIdenticallyFromRederivedSeed) {
  RunnerConfig cfg;
  cfg.max_attempts = 3;
  const auto results = Runner{cfg}.run_resilient(flaky_faulted_plan(4));
  ASSERT_EQ(results.size(), 4u);

  EXPECT_EQ(results[0].outcome, TrialOutcome::kOk);
  EXPECT_EQ(results[0].attempts, 1u);
  EXPECT_EQ(results[2].outcome, TrialOutcome::kOk);
  EXPECT_EQ(results[3].outcome, TrialOutcome::kOk);

  const auto& retried = results[1];
  EXPECT_EQ(retried.outcome, TrialOutcome::kRetried);
  EXPECT_TRUE(retried.ok());
  EXPECT_EQ(retried.attempts, 2u);
  EXPECT_EQ(retried.seed_used, rederive_seed(41, 1));

  // The salvaged attempt is a plain deterministic run at the rederived
  // seed: rerunning that exact faulted testbed reproduces it bit for bit.
  const auto replay = faulted_capture_run(rederive_seed(41, 1));
  EXPECT_EQ(retried.stats.tx_frames, replay.tx_frames);
  EXPECT_EQ(retried.stats.rx_frames, replay.rx_frames);
  ASSERT_EQ(retried.stats.latency_ns.count(), replay.latency_ns.count());
  for (std::size_t i = 0; i < replay.latency_ns.count(); ++i)
    EXPECT_EQ(retried.stats.latency_ns.samples()[i],
              replay.latency_ns.samples()[i]);
}

TEST(Chaos, PlanCompletesWithPartialResultsWhenASlotIsHopeless) {
  TrialPlan plan;
  plan.points.resize(3);
  for (std::size_t i = 0; i < 3; ++i) plan.points[i].seed = 90 + i;
  plan.run = [](const TrialPoint& pt) -> TrialStats {
    if (pt.index == 1) throw std::runtime_error("hopeless slot");
    TrialStats s;
    s.tx_frames = 100 + pt.seed;
    s.rx_frames = 100 + pt.seed;
    return s;
  };
  RunnerConfig cfg;
  cfg.max_attempts = 2;
  const auto results = Runner{cfg}.run_resilient(plan);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(results[0].outcome, TrialOutcome::kOk);
  EXPECT_EQ(results[2].outcome, TrialOutcome::kOk);  // siblings unaffected
  EXPECT_EQ(results[1].outcome, TrialOutcome::kFailed);
  EXPECT_FALSE(results[1].ok());
  EXPECT_EQ(results[1].attempts, 2u);  // both attempts consumed
  EXPECT_EQ(results[1].error, "hopeless slot");
  EXPECT_EQ(results[1].stats.tx_frames, 0u);  // value-initialized stats
  ASSERT_TRUE(results[1].exception);
  EXPECT_THROW(std::rethrow_exception(results[1].exception),
               std::runtime_error);
}

TEST(Chaos, LivelockedTrialTimesOutWithoutAbortingSiblings) {
  TrialPlan plan;
  plan.points.resize(4);
  for (std::size_t i = 0; i < 4; ++i) plan.points[i].seed = 60 + i;
  plan.run = [](const TrialPoint& pt) -> TrialStats {
    if (pt.index == 2) {
      // A livelock: sim time never advances, only the event budget —
      // adopted from the runner's WatchdogScope — can stop it.
      sim::Engine eng;
      std::function<void()> self = [&] {
        eng.schedule_at(eng.now(), [&] { self(); });
      };
      eng.schedule_at(0, [&] { self(); });
      eng.run();
      ADD_FAILURE() << "livelock survived the event budget";
    }
    TrialStats s;
    s.tx_frames = pt.seed;
    s.rx_frames = pt.seed;
    return s;
  };
  RunnerConfig cfg;
  cfg.event_budget = 50'000;
  const auto results = Runner{cfg}.run_resilient(plan);
  ASSERT_EQ(results.size(), 4u);
  EXPECT_EQ(results[2].outcome, TrialOutcome::kTimedOut);
  EXPECT_FALSE(results[2].ok());
  EXPECT_FALSE(results[2].error.empty());
  for (const std::size_t i : {std::size_t{0}, std::size_t{1}, std::size_t{3}}) {
    EXPECT_EQ(results[i].outcome, TrialOutcome::kOk) << i;
    EXPECT_EQ(results[i].stats.tx_frames, 60 + i);
  }
}

TEST(Chaos, OutcomesAndSimOnlyTelemetryAreByteIdenticalAcrossJobs) {
  const auto run_with_jobs = [](std::size_t jobs) {
    telemetry::registry().reset();
    RunnerConfig cfg;
    cfg.jobs = jobs;
    cfg.max_attempts = 3;
    const auto results = Runner{cfg}.run_resilient(flaky_faulted_plan(4));
    std::string outcomes;
    for (const auto& r : results) {
      outcomes += trial_outcome_name(r.outcome);
      outcomes += ':' + std::to_string(r.attempts);
      outcomes += ':' + std::to_string(r.seed_used);
      outcomes += ':' + std::to_string(r.stats.rx_frames);
      outcomes += '\n';
    }
    return std::pair{outcomes, telemetry::registry().to_json(
                                   telemetry::Snapshot::kSimOnly)};
  };
  const auto serial = run_with_jobs(1);
  const auto sharded = run_with_jobs(4);
  EXPECT_EQ(serial.first, sharded.first);
  EXPECT_EQ(serial.second, sharded.second);
}

}  // namespace
}  // namespace osnt::core
