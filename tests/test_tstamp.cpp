// Timestamping subsystem: format, oscillator drift, GPS discipline servo,
// packet embedding. These tests pin the paper's precision claims.
#include <gtest/gtest.h>

#include <cmath>

#include "osnt/net/builder.hpp"
#include "osnt/tstamp/clock.hpp"
#include "osnt/tstamp/embed.hpp"
#include "osnt/tstamp/gps.hpp"
#include "osnt/tstamp/oscillator.hpp"
#include "osnt/tstamp/timestamp.hpp"

namespace osnt::tstamp {
namespace {

// -------------------------------------------------------------- Timestamp

TEST(Timestamp, FixedPointRoundTrip) {
  const Timestamp t = Timestamp::from_seconds(1.5);
  EXPECT_EQ(t.whole_seconds(), 1u);
  EXPECT_EQ(t.fraction(), 0x80000000u);
  EXPECT_DOUBLE_EQ(t.to_seconds(), 1.5);
}

TEST(Timestamp, DeltaNanos) {
  const Timestamp a = Timestamp::from_seconds(2.000001);
  const Timestamp b = Timestamp::from_seconds(2.0);
  EXPECT_NEAR(delta_nanos(a, b), 1000.0, 0.5);
  EXPECT_NEAR(delta_nanos(b, a), -1000.0, 0.5);
}

TEST(Timestamp, FormatResolutionBelowTick) {
  // The 32.32 format resolves ~233 ps — finer than the 6.25 ns tick, so
  // the tick (not the format) limits precision, as in the hardware.
  const Timestamp a = Timestamp::from_raw(0);
  const Timestamp b = Timestamp::from_raw(1);
  EXPECT_LT(delta_nanos(b, a), kTickNanos);
  EXPECT_NEAR(delta_nanos(b, a), 0.2328, 0.001);
}

// -------------------------------------------------------------- Oscillator

TEST(Oscillator, PerfectClockCountsNominal) {
  Oscillator osc;  // 160 MHz, no error
  EXPECT_EQ(osc.ticks_at(kPicosPerSec), 160'000'000u);
}

TEST(Oscillator, PpmOffsetShowsUp) {
  OscillatorConfig cfg;
  cfg.ppm_offset = 10.0;  // +10 ppm fast
  Oscillator osc{cfg};
  const auto ticks = osc.ticks_at(kPicosPerSec);
  EXPECT_NEAR(static_cast<double>(ticks), 160'000'000.0 * (1.0 + 10e-6), 20.0);
}

TEST(Oscillator, MonotonicQueries) {
  OscillatorConfig cfg;
  cfg.random_walk_ppm = 1.0;
  Oscillator osc{cfg};
  std::uint64_t prev = 0;
  for (int i = 1; i <= 100; ++i) {
    const auto t = osc.ticks_at(i * 10 * kPicosPerMilli);
    EXPECT_GE(t, prev);
    prev = t;
  }
}

TEST(Oscillator, QueryInPastIsClamped) {
  Oscillator osc;
  const auto a = osc.ticks_at(kPicosPerSec);
  const auto b = osc.ticks_at(kPicosPerSec / 2);  // earlier: clamped
  EXPECT_EQ(a, b);
}

// -------------------------------------------------------------------- GPS

TEST(Gps, PpsNearSecondBoundaries) {
  GpsConfig cfg;
  cfg.jitter_rms = 30 * kPicosPerNano;
  GpsModel gps{cfg};
  Picos prev = 0;
  for (int k = 1; k <= 10; ++k) {
    const auto edge = gps.next_pps_after(prev);
    ASSERT_TRUE(edge);
    EXPECT_NEAR(static_cast<double>(*edge),
                static_cast<double>(k) * kPicosPerSec,
                static_cast<double>(kPicosPerNano) * 200);
    prev = *edge;
  }
}

TEST(Gps, DisconnectedYieldsNothing) {
  GpsConfig cfg;
  cfg.connected = false;
  GpsModel gps{cfg};
  EXPECT_FALSE(gps.next_pps_after(0));
}

TEST(Gps, ZeroJitterIsExact) {
  GpsConfig cfg;
  cfg.jitter_rms = 0;
  GpsModel gps{cfg};
  EXPECT_EQ(*gps.next_pps_after(0), kPicosPerSec);
  EXPECT_EQ(*gps.next_pps_after(kPicosPerSec), 2 * kPicosPerSec);
}

// --------------------------------------------------------- DisciplinedClock

TEST(Clock, PerfectOscillatorTracksTruth) {
  GpsModel gps;  // default 30 ns PPS jitter feeds into the servo
  DisciplinedClock clk{gps};
  for (int i = 1; i <= 20; ++i) {
    const Picos t = i * 100 * kPicosPerMilli;
    // Bounded by the GPS jitter the servo chases, not by the tick.
    EXPECT_NEAR(clk.now(t).to_nanos(), to_nanos(t), 200.0);
  }
}

TEST(Clock, UndisciplinedDriftGrowsLinearly) {
  GpsModel gps;
  ClockConfig cfg;
  cfg.discipline = false;
  cfg.osc.ppm_offset = 20.0;
  DisciplinedClock clk{gps, cfg};
  // After 10 s a 20 ppm clock is ~200 µs off.
  const double err = clk.error_nanos(10 * kPicosPerSec);
  EXPECT_NEAR(err, 200'000.0, 2'000.0);
}

TEST(Clock, GpsDisciplineBoundsError) {
  GpsConfig gcfg;
  gcfg.jitter_rms = 30 * kPicosPerNano;
  GpsModel gps{gcfg};
  ClockConfig cfg;
  cfg.osc.ppm_offset = 20.0;
  // Crystal-grade stability (~1e-8/sqrt(s)); a 1 Hz servo cannot bound a
  // much worse oscillator below 1 µs.
  cfg.osc.random_walk_ppm = 0.02;
  DisciplinedClock clk{gps, cfg};
  // Let the servo converge (several PPS edges), then check bound.
  (void)clk.now(5 * kPicosPerSec);
  double worst = 0.0;
  for (int i = 0; i < 50; ++i) {
    const Picos t = 5 * kPicosPerSec + i * 100 * kPicosPerMilli;
    worst = std::max(worst, std::abs(clk.error_nanos(t)));
  }
  // Sub-microsecond, as the paper claims (typically tens of ns here).
  EXPECT_LT(worst, 1000.0);
  EXPECT_GT(clk.pps_edges_seen(), 4u);
}

TEST(Clock, ServoTrimsStaticOffset) {
  GpsConfig gcfg;
  gcfg.jitter_rms = 0;
  GpsModel gps{gcfg};
  ClockConfig cfg;
  cfg.osc.ppm_offset = 50.0;
  DisciplinedClock clk{gps, cfg};
  (void)clk.now(20 * kPicosPerSec);
  // The integral term should have absorbed ~-50 ppm.
  EXPECT_NEAR(clk.trim_ppm(), -50.0, 5.0);
}

TEST(Clock, TimestampsQuantizedToTicks) {
  GpsModel gps;
  ClockConfig cfg;
  cfg.discipline = false;
  DisciplinedClock clk{gps, cfg};
  // Two queries 1 ns apart (below the 6.25 ns tick) often yield the same
  // stamp; queries a tick apart always differ.
  const auto a = clk.now(1000 * kPicosPerNano);
  const auto b = clk.now(1000 * kPicosPerNano + from_nanos(kTickNanos));
  EXPECT_GT(b.raw, a.raw);
  const double step = delta_nanos(b, a);
  // One tick is 26.84 LSBs of the 32.32 format, so a single step reads as
  // 26 or 27 LSBs: allow ±1 LSB (~0.233 ns).
  EXPECT_NEAR(step, kTickNanos, 0.25);
}

TEST(Clock, MonotonicOutput) {
  GpsModel gps;
  ClockConfig cfg;
  cfg.osc.ppm_offset = -30.0;
  DisciplinedClock clk{gps, cfg};
  std::uint64_t prev = 0;
  for (int i = 0; i < 1000; ++i) {
    const auto t = clk.now(i * kPicosPerMilli);
    EXPECT_GE(t.raw, prev);
    prev = t.raw;
  }
}

// ------------------------------------------------------------------ Embed

TEST(Embed, RoundTrip) {
  net::PacketBuilder b;
  net::Packet p =
      b.eth(net::MacAddr::from_index(1), net::MacAddr::from_index(2))
          .ipv4(net::Ipv4Addr::of(10, 0, 0, 1), net::Ipv4Addr::of(10, 0, 1, 1),
                net::ipproto::kUdp)
          .udp(1024, 5001)
          .pad_to_frame(128)
          .build();
  const Timestamp ts = Timestamp::from_seconds(3.14159);
  ASSERT_TRUE(embed_timestamp(p.mut_bytes(), kDefaultEmbedOffset, {ts, 42}));
  const auto back = extract_timestamp(p.bytes(), kDefaultEmbedOffset);
  ASSERT_TRUE(back);
  EXPECT_EQ(back->ts, ts);
  EXPECT_EQ(back->seq, 42u);
}

TEST(Embed, TooShortFails) {
  net::Packet p;
  p.data.assign(45, 0);  // offset 42 + 12 > 45
  EXPECT_FALSE(embed_timestamp(p.mut_bytes(), kDefaultEmbedOffset, {{}, 0}));
  EXPECT_FALSE(extract_timestamp(p.bytes(), kDefaultEmbedOffset));
}

TEST(Embed, CustomOffset) {
  net::Packet p;
  p.data.assign(64, 0);
  const Timestamp ts = Timestamp::from_raw(0x0123456789ABCDEF);
  ASSERT_TRUE(embed_timestamp(p.mut_bytes(), 16, {ts, 7}));
  const auto back = extract_timestamp(p.bytes(), 16);
  ASSERT_TRUE(back);
  EXPECT_EQ(back->ts.raw, 0x0123456789ABCDEFull);
  // Different offset reads garbage (not the stamp).
  const auto wrong = extract_timestamp(p.bytes(), 20);
  ASSERT_TRUE(wrong);
  EXPECT_NE(wrong->ts.raw, ts.raw);
}

}  // namespace
}  // namespace osnt::tstamp
