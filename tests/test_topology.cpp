// Topology loader: strict-JSON error paths (unknown block types, dangling
// edges, port mismatches, duplicate names — each with a position and a
// did-you-mean hint), a round-trip of the schema into a live trial, and
// the headline determinism claim: a dumbbell of closed-loop TCP flows is
// byte-identical under kSimOnly telemetry at any --jobs value.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "osnt/core/runner.hpp"
#include "osnt/graph/topology.hpp"
#include "osnt/telemetry/registry.hpp"
#include "osnt/telemetry/series.hpp"

namespace osnt {
namespace {

using graph::TopologyFile;

/// Parse `text` expecting a TopologyError; return its message for
/// substring checks.
std::string load_error(const std::string& text) {
  try {
    (void)TopologyFile::from_json(text);
  } catch (const graph::TopologyError& e) {
    return e.what();
  }
  ADD_FAILURE() << "expected TopologyError, topology loaded fine";
  return {};
}

void expect_contains(const std::string& msg, const std::string& needle) {
  EXPECT_NE(msg.find(needle), std::string::npos)
      << "expected \"" << needle << "\" in: " << msg;
}

constexpr const char* kMinimalCbr = R"({
  "name": "mini",
  "seed": 9,
  "duration_us": 1500,
  "blocks": [
    {"name": "q", "type": "fifo_queue", "rate_gbps": 10.0, "queue_frames": 32}
  ],
  "edges": [],
  "workload": {
    "kind": "cbr", "rate_gbps": 2.0, "frame_size": 512,
    "ingress": "q:0", "egress": "q:0"
  }
})";

TEST(Topology, ParsesMinimalFile) {
  const TopologyFile t = TopologyFile::from_json(kMinimalCbr);
  EXPECT_EQ(t.name, "mini");
  EXPECT_EQ(t.seed, 9u);
  EXPECT_EQ(t.duration, 1500 * kPicosPerMicro);
  ASSERT_EQ(t.blocks.size(), 1u);
  EXPECT_EQ(t.blocks[0].type, "fifo_queue");
  EXPECT_EQ(t.blocks[0].fifo.queue_frames, 32u);
  EXPECT_EQ(t.workload.kind, graph::WorkloadSpec::Kind::kCbr);
  EXPECT_EQ(t.workload.frame_size, 512u);
  EXPECT_EQ(t.workload.ingress.block, "q");
  EXPECT_EQ(t.workload.egress.port, 0u);
}

TEST(Topology, KnownTypesCoverTheBlockLibrary) {
  const auto& types = TopologyFile::known_types();
  for (const char* t : {"fifo_queue", "red", "token_bucket", "delay_ber",
                        "ecmp", "sink", "monitor", "legacy_switch",
                        "openflow_switch"}) {
    EXPECT_NE(std::find(types.begin(), types.end(), t), types.end())
        << "missing type " << t;
  }
}

TEST(Topology, UnknownBlockTypeSuggestsNearest) {
  const std::string msg = load_error(R"({
    "name": "t",
    "blocks": [{"name": "q", "type": "fifo_quue"}],
    "workload": {"kind": "none"}
  })");
  expect_contains(msg, "unknown block type 'fifo_quue'");
  expect_contains(msg, "did you mean 'fifo_queue'?");
  expect_contains(msg, "line");  // position of the offending value
}

TEST(Topology, UnknownKeySuggestsNearest) {
  const std::string msg = load_error(R"({
    "name": "t",
    "blocks": [{"name": "q", "type": "fifo_queue", "rate_gbsp": 10.0}],
    "workload": {"kind": "none"}
  })");
  expect_contains(msg, "unknown key 'rate_gbsp'");
  expect_contains(msg, "did you mean 'rate_gbps'?");
}

TEST(Topology, DanglingEdgeIsAnError) {
  const std::string msg = load_error(R"({
    "name": "t",
    "blocks": [{"name": "queue0", "type": "fifo_queue"},
               {"name": "drain", "type": "sink"}],
    "edges": [{"from": "queue0:0", "to": "drain0:0"}],
    "workload": {"kind": "none"}
  })");
  expect_contains(msg, "unknown block 'drain0'");
  expect_contains(msg, "did you mean 'drain'?");
}

TEST(Topology, PortCountMismatchIsAnError) {
  const std::string msg = load_error(R"({
    "name": "t",
    "blocks": [{"name": "spray", "type": "ecmp", "fanout": 2},
               {"name": "drain", "type": "sink"}],
    "edges": [{"from": "spray:2", "to": "drain:0"}],
    "workload": {"kind": "none"}
  })");
  expect_contains(msg, "block 'spray' has no output port 2");
  expect_contains(msg, "outputs: 2");
}

TEST(Topology, DuplicateBlockNameIsAnError) {
  const std::string msg = load_error(R"({
    "name": "t",
    "blocks": [{"name": "q", "type": "fifo_queue"},
               {"name": "q", "type": "sink"}],
    "workload": {"kind": "none"}
  })");
  expect_contains(msg, "duplicate block name 'q'");
}

TEST(Topology, DoubleWiredOutputIsAnError) {
  const std::string msg = load_error(R"({
    "name": "t",
    "blocks": [{"name": "q", "type": "fifo_queue"},
               {"name": "a", "type": "sink"},
               {"name": "b", "type": "sink"}],
    "edges": [{"from": "q:0", "to": "a:0"}, {"from": "q:0", "to": "b:0"}],
    "workload": {"kind": "none"}
  })");
  expect_contains(msg, "output 'q:0' is already wired");
}

TEST(Topology, ConflictingTimeUnitsAreAnError) {
  const std::string msg = load_error(R"({
    "name": "t",
    "blocks": [{"name": "w", "type": "delay_ber",
                "delay_ns": 10, "delay_us": 1}],
    "workload": {"kind": "none"}
  })");
  expect_contains(msg, "'delay' given in more than one unit");
}

TEST(Topology, CbrTrialRunsThroughTheGraph) {
  const TopologyFile t = TopologyFile::from_json(kMinimalCbr);
  const graph::TopologyTrialReport r = graph::run_topology_trial(t, t.seed);
  EXPECT_GT(r.cbr.tx_frames, 0u);
  EXPECT_GT(r.cbr.rx_frames, 0u);
  EXPECT_LT(r.cbr.loss_fraction(), 0.01);
  ASSERT_EQ(r.blocks.size(), 1u);
  EXPECT_EQ(r.blocks[0].name, "q");
  EXPECT_EQ(r.blocks[0].frames_in, r.cbr.tx_frames);
  EXPECT_EQ(r.graph_frames_in, r.blocks[0].frames_in);
}

// A scaled-down dumbbell10: closed-loop TCP flows share a RED bottleneck
// with an in-plane monitor tap behind it, and a symmetric delay on the
// ACK path.
constexpr const char* kMiniDumbbell = R"({
  "name": "mini_dumbbell",
  "seed": 1,
  "duration_ms": 4,
  "blocks": [
    {"name": "access", "type": "delay_ber", "delay_us": 2},
    {"name": "bottleneck", "type": "red", "rate_gbps": 1.0,
     "queue_frames": 60, "min_th": 8, "max_th": 30, "max_p": 0.1},
    {"name": "tap", "type": "monitor", "rtt_probe": true},
    {"name": "ackpath", "type": "delay_ber", "delay_us": 2}
  ],
  "edges": [{"from": "access:0", "to": "bottleneck:0"},
            {"from": "bottleneck:0", "to": "tap:0"}],
  "workload": {
    "kind": "tcp", "flows": 4, "cc": "newreno",
    "ingress": "access:0", "egress": "tap:0",
    "ack_ingress": "ackpath:0", "ack_egress": "ackpath:0"
  }
})";

struct DumbbellOutcome {
  std::vector<graph::TopologyTrialReport> reports;
  std::string sim_metrics_json;
};

DumbbellOutcome run_dumbbell_trials(std::size_t jobs,
                                    Picos series_interval = 0) {
  telemetry::registry().reset();
  const TopologyFile topo = TopologyFile::from_json(kMiniDumbbell);
  DumbbellOutcome out;
  out.reports.resize(3);

  core::TrialPlan plan;
  for (std::size_t i = 0; i < out.reports.size(); ++i) {
    core::TrialPoint pt;
    pt.seed = topo.seed + i;
    plan.points.push_back(pt);
  }
  plan.run = [&](const core::TrialPoint& pt) {
    const auto r = graph::run_topology_trial(topo, pt.seed, /*duration=*/0,
                                             /*plan=*/nullptr,
                                             /*trace=*/nullptr,
                                             series_interval);
    core::TrialStats st;
    st.metric = static_cast<double>(r.tcp.bytes_acked);
    out.reports[pt.index] = r;  // slots are disjoint across workers
    return st;
  };

  core::RunnerConfig rcfg;
  rcfg.jobs = jobs;
  (void)core::Runner{rcfg}.run(plan);
  out.sim_metrics_json =
      telemetry::registry().to_json(telemetry::Snapshot::kSimOnly);
  return out;
}

/// Merge the per-trial series the way the CLI does: in plan (index)
/// order. merge_from is commutative, so this is just the canonical order.
telemetry::SeriesData merged_series(const DumbbellOutcome& out) {
  telemetry::SeriesData merged;
  for (const auto& r : out.reports) merged.merge_from(r.series);
  return merged;
}

TEST(Topology, DumbbellTcpMakesForwardProgress) {
  const TopologyFile topo = TopologyFile::from_json(kMiniDumbbell);
  const auto r = graph::run_topology_trial(topo, topo.seed);
  EXPECT_GT(r.tcp.bytes_acked, 0u);
  EXPECT_GT(r.tcp.segs_sent, 0u);
  // The 1 Gbps RED bottleneck is the constraint: goodput must be below
  // line rate but the loop must stay busy.
  EXPECT_LT(r.tcp.goodput_bps, 1.1e9);
  EXPECT_GT(r.tcp.goodput_bps, 1e8);
}

TEST(Topology, DumbbellIsByteIdenticalAcrossJobs) {
  const bool was_enabled = telemetry::enabled();
  telemetry::set_enabled(true);

  const DumbbellOutcome serial = run_dumbbell_trials(1);
  const DumbbellOutcome parallel = run_dumbbell_trials(4);

  // Per-trial reports agree slot for slot...
  ASSERT_EQ(serial.reports.size(), parallel.reports.size());
  for (std::size_t i = 0; i < serial.reports.size(); ++i) {
    EXPECT_EQ(serial.reports[i].tcp.bytes_acked,
              parallel.reports[i].tcp.bytes_acked)
        << "trial " << i;
    EXPECT_EQ(serial.reports[i].tcp.retransmits,
              parallel.reports[i].tcp.retransmits)
        << "trial " << i;
    EXPECT_EQ(serial.reports[i].graph_drops, parallel.reports[i].graph_drops)
        << "trial " << i;
  }
  EXPECT_GT(serial.reports[0].tcp.bytes_acked, 0u);

  // ...and so does the whole sim-only telemetry snapshot, byte for byte.
  EXPECT_EQ(serial.sim_metrics_json, parallel.sim_metrics_json);
  EXPECT_NE(serial.sim_metrics_json.find("graph.bottleneck.frames_in"),
            std::string::npos)
      << serial.sim_metrics_json;

  telemetry::registry().reset();
  telemetry::set_enabled(was_enabled);
}

TEST(Topology, DumbbellMonitorReportsRttQuantiles) {
  const TopologyFile topo = TopologyFile::from_json(kMiniDumbbell);
  const auto r = graph::run_topology_trial(topo, topo.seed);

  const graph::BlockCounters* tap = nullptr;
  for (const auto& b : r.blocks) {
    if (b.name == "tap") tap = &b;
    // Only monitor blocks carry an RTT population.
    if (b.name != "tap") EXPECT_EQ(b.rtt_samples, 0u) << b.name;
  }
  ASSERT_NE(tap, nullptr);
  EXPECT_GT(tap->frames_in, 0u);
  // The tap sits behind the bottleneck: every data segment that survived
  // RED is in the histogram, and the quantiles are ordered.
  EXPECT_GT(tap->rtt_samples, 0u);
  EXPECT_GT(tap->rtt_p50_ns, 0.0);
  EXPECT_LE(tap->rtt_p50_ns, tap->rtt_p90_ns);
  EXPECT_LE(tap->rtt_p90_ns, tap->rtt_p99_ns);
  // frame_bytes makes series-derived throughput possible without a
  // separate tap: it must track frames_in (TCP segments are >= 64B).
  EXPECT_GE(tap->frame_bytes, 64 * tap->frames_in);
}

TEST(Topology, MonitorRttProbeCanBeDisabled) {
  std::string quiet = kMiniDumbbell;
  const std::string on = "\"rtt_probe\": true";
  quiet.replace(quiet.find(on), on.size(), "\"rtt_probe\": false");
  const TopologyFile topo = TopologyFile::from_json(quiet);
  const auto r = graph::run_topology_trial(topo, topo.seed);
  for (const auto& b : r.blocks) {
    if (b.name != "tap") continue;
    EXPECT_GT(b.frames_in, 0u);  // still forwards
    EXPECT_EQ(b.rtt_samples, 0u);
  }
}

TEST(Topology, DumbbellSeriesByteIdenticalAcrossJobs) {
  const DumbbellOutcome serial = run_dumbbell_trials(1, kPicosPerMilli);
  const DumbbellOutcome parallel = run_dumbbell_trials(4, kPicosPerMilli);

  const telemetry::SeriesData a = merged_series(serial);
  const telemetry::SeriesData b = merged_series(parallel);
  const std::string json = a.to_json();
  EXPECT_EQ(json, b.to_json());

  // The merged series carries the per-block channels, the monitor RTT
  // trajectory, and the aggregate tcp channels for all three trials.
  EXPECT_EQ(a.trials, 3u);
  EXPECT_EQ(a.interval, kPicosPerMilli);
  EXPECT_GE(a.intervals(), 4u);  // 4 ms sampled every 1 ms
  EXPECT_NE(json.find("graph.tap.rtt.ns"), std::string::npos);
  EXPECT_NE(json.find("graph.bottleneck.frames_in"), std::string::npos);
  EXPECT_NE(json.find("graph.tap.frame_bytes"), std::string::npos);
  EXPECT_NE(json.find("tcp.bytes_acked"), std::string::npos);
  EXPECT_NE(json.find("tcp.rtt.ns"), std::string::npos);

  // The trajectory is real, not a flat line: TCP moved bytes in at least
  // one sampled interval.
  std::uint64_t acked = 0;
  for (const std::uint64_t d : a.channels.at("tcp.bytes_acked").deltas)
    acked += d;
  EXPECT_GT(acked, 0u);
}

}  // namespace
}  // namespace osnt
