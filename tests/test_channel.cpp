// Control channel: delivery, ordering, latency and bandwidth modelling.
#include <gtest/gtest.h>

#include <vector>

#include "osnt/openflow/channel.hpp"

namespace osnt::openflow {
namespace {

TEST(Channel, DeliversDecodedMessage) {
  sim::Engine eng;
  ControlChannel chan{eng};
  std::vector<Decoded> at_switch;
  chan.switch_end().set_handler(
      [&](Decoded d) { at_switch.push_back(std::move(d)); });
  const std::uint32_t xid = chan.controller().send(Hello{});
  eng.run();
  ASSERT_EQ(at_switch.size(), 1u);
  EXPECT_TRUE(std::holds_alternative<Hello>(at_switch[0].msg));
  EXPECT_EQ(at_switch[0].xid, xid);
}

TEST(Channel, LatencyApplied) {
  sim::Engine eng;
  ChannelConfig cfg;
  cfg.latency = 250 * kPicosPerMicro;
  cfg.mbps = 1e9;  // effectively instant serialization
  ControlChannel chan{eng, cfg};
  Picos arrival = -1;
  chan.switch_end().set_handler([&](Decoded) { arrival = eng.now(); });
  chan.controller().send(Hello{});
  eng.run();
  EXPECT_NEAR(static_cast<double>(arrival), 250e6, 1e6);
}

TEST(Channel, BandwidthSerializesBursts) {
  sim::Engine eng;
  ChannelConfig cfg;
  cfg.latency = 0;
  cfg.mbps = 8.0;  // 1 byte per µs
  ControlChannel chan{eng, cfg};
  std::vector<Picos> arrivals;
  chan.switch_end().set_handler([&](Decoded) { arrivals.push_back(eng.now()); });
  chan.controller().send(Hello{});  // 8 bytes → 8 µs
  chan.controller().send(Hello{});
  eng.run();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_EQ(arrivals[0], 8 * kPicosPerMicro);
  EXPECT_EQ(arrivals[1], 16 * kPicosPerMicro);
}

TEST(Channel, InOrderDelivery) {
  sim::Engine eng;
  ControlChannel chan{eng};
  std::vector<std::uint32_t> xids;
  chan.switch_end().set_handler([&](Decoded d) { xids.push_back(d.xid); });
  for (int i = 0; i < 10; ++i) chan.controller().send(BarrierRequest{});
  eng.run();
  ASSERT_EQ(xids.size(), 10u);
  for (std::size_t i = 1; i < xids.size(); ++i) EXPECT_GT(xids[i], xids[i - 1]);
}

TEST(Channel, BothDirectionsIndependent) {
  sim::Engine eng;
  ControlChannel chan{eng};
  int at_ctrl = 0, at_sw = 0;
  chan.controller().set_handler([&](Decoded) { ++at_ctrl; });
  chan.switch_end().set_handler([&](Decoded) { ++at_sw; });
  chan.controller().send(Hello{});
  chan.switch_end().send(Hello{});
  eng.run();
  EXPECT_EQ(at_ctrl, 1);
  EXPECT_EQ(at_sw, 1);
}

TEST(Channel, ExplicitXidPreserved) {
  sim::Engine eng;
  ControlChannel chan{eng};
  std::uint32_t got = 0;
  chan.switch_end().set_handler([&](Decoded d) { got = d.xid; });
  chan.controller().send(EchoRequest{}, 0xCAFEBABE);
  eng.run();
  EXPECT_EQ(got, 0xCAFEBABEu);
}

TEST(Channel, CountsBytes) {
  sim::Engine eng;
  ControlChannel chan{eng};
  chan.switch_end().set_handler([](Decoded) {});
  chan.controller().send(Hello{});
  EXPECT_EQ(chan.controller().messages_sent(), 1u);
  EXPECT_EQ(chan.controller().bytes_sent(), 8u);
}

TEST(Channel, FlowModSurvivesWireFormat) {
  sim::Engine eng;
  ControlChannel chan{eng};
  FlowMod got;
  chan.switch_end().set_handler([&](Decoded d) {
    ASSERT_TRUE(std::holds_alternative<FlowMod>(d.msg));
    got = std::get<FlowMod>(d.msg);
  });
  FlowMod fm;
  fm.match = OfMatch::exact_5tuple(0x0A000001, 0x0A000002, 17, 1, 2);
  fm.priority = 777;
  fm.actions = {ActionOutput{3}};
  chan.controller().send(fm);
  eng.run();
  EXPECT_EQ(got.priority, 777);
  EXPECT_EQ(got.match, fm.match);
  ASSERT_EQ(got.actions.size(), 1u);
}

}  // namespace
}  // namespace osnt::openflow
