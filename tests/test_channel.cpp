// Control channel: delivery, ordering, latency and bandwidth modelling.
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "osnt/openflow/channel.hpp"

namespace osnt::openflow {
namespace {

TEST(Channel, DeliversDecodedMessage) {
  sim::Engine eng;
  ControlChannel chan{eng};
  std::vector<Decoded> at_switch;
  chan.switch_end().set_handler(
      [&](Decoded d) { at_switch.push_back(std::move(d)); });
  const std::uint32_t xid = chan.controller().send(Hello{});
  eng.run();
  ASSERT_EQ(at_switch.size(), 1u);
  EXPECT_TRUE(std::holds_alternative<Hello>(at_switch[0].msg));
  EXPECT_EQ(at_switch[0].xid, xid);
}

TEST(Channel, LatencyApplied) {
  sim::Engine eng;
  ChannelConfig cfg;
  cfg.latency = 250 * kPicosPerMicro;
  cfg.mbps = 1e9;  // effectively instant serialization
  ControlChannel chan{eng, cfg};
  Picos arrival = -1;
  chan.switch_end().set_handler([&](Decoded) { arrival = eng.now(); });
  chan.controller().send(Hello{});
  eng.run();
  EXPECT_NEAR(static_cast<double>(arrival), 250e6, 1e6);
}

TEST(Channel, BandwidthSerializesBursts) {
  sim::Engine eng;
  ChannelConfig cfg;
  cfg.latency = 0;
  cfg.mbps = 8.0;  // 1 byte per µs
  ControlChannel chan{eng, cfg};
  std::vector<Picos> arrivals;
  chan.switch_end().set_handler([&](Decoded) { arrivals.push_back(eng.now()); });
  chan.controller().send(Hello{});  // 8 bytes → 8 µs
  chan.controller().send(Hello{});
  eng.run();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_EQ(arrivals[0], 8 * kPicosPerMicro);
  EXPECT_EQ(arrivals[1], 16 * kPicosPerMicro);
}

TEST(Channel, InOrderDelivery) {
  sim::Engine eng;
  ControlChannel chan{eng};
  std::vector<std::uint32_t> xids;
  chan.switch_end().set_handler([&](Decoded d) { xids.push_back(d.xid); });
  for (int i = 0; i < 10; ++i) chan.controller().send(BarrierRequest{});
  eng.run();
  ASSERT_EQ(xids.size(), 10u);
  for (std::size_t i = 1; i < xids.size(); ++i) EXPECT_GT(xids[i], xids[i - 1]);
}

TEST(Channel, BothDirectionsIndependent) {
  sim::Engine eng;
  ControlChannel chan{eng};
  int at_ctrl = 0, at_sw = 0;
  chan.controller().set_handler([&](Decoded) { ++at_ctrl; });
  chan.switch_end().set_handler([&](Decoded) { ++at_sw; });
  chan.controller().send(Hello{});
  chan.switch_end().send(Hello{});
  eng.run();
  EXPECT_EQ(at_ctrl, 1);
  EXPECT_EQ(at_sw, 1);
}

TEST(Channel, ExplicitXidPreserved) {
  sim::Engine eng;
  ControlChannel chan{eng};
  std::uint32_t got = 0;
  chan.switch_end().set_handler([&](Decoded d) { got = d.xid; });
  chan.controller().send(EchoRequest{}, 0xCAFEBABE);
  eng.run();
  EXPECT_EQ(got, 0xCAFEBABEu);
}

TEST(Channel, CountsBytes) {
  sim::Engine eng;
  ControlChannel chan{eng};
  chan.switch_end().set_handler([](Decoded) {});
  chan.controller().send(Hello{});
  EXPECT_EQ(chan.controller().messages_sent(), 1u);
  EXPECT_EQ(chan.controller().bytes_sent(), 8u);
}

TEST(Channel, FlowModSurvivesWireFormat) {
  sim::Engine eng;
  ControlChannel chan{eng};
  FlowMod got;
  chan.switch_end().set_handler([&](Decoded d) {
    ASSERT_TRUE(std::holds_alternative<FlowMod>(d.msg));
    got = std::get<FlowMod>(d.msg);
  });
  FlowMod fm;
  fm.match = OfMatch::exact_5tuple(0x0A000001, 0x0A000002, 17, 1, 2);
  fm.priority = 777;
  fm.actions = {ActionOutput{3}};
  chan.controller().send(fm);
  eng.run();
  EXPECT_EQ(got.priority, 777);
  EXPECT_EQ(got.match, fm.match);
  ASSERT_EQ(got.actions.size(), 1u);
}

TEST(Channel, DisconnectLosesInFlightAndDropsSends) {
  sim::Engine eng;
  ChannelConfig cfg;
  cfg.latency = 100 * kPicosPerMicro;
  ControlChannel chan{eng, cfg};
  std::size_t delivered = 0;
  chan.switch_end().set_handler([&](Decoded) { ++delivered; });
  chan.controller().send(Hello{});  // on the wire when the session dies
  eng.schedule_at(10 * kPicosPerMicro, [&] { chan.set_link_available(false); });
  eng.schedule_at(20 * kPicosPerMicro, [&] {
    chan.controller().send(Hello{});  // session down → dropped at source
  });
  eng.run();
  EXPECT_EQ(delivered, 0u);
  EXPECT_EQ(chan.messages_lost_in_flight(), 1u);
  EXPECT_EQ(chan.controller().messages_dropped(), 1u);
  EXPECT_EQ(chan.disconnects(), 1u);
}

TEST(Channel, ReconnectsWithBackoffWhenLinkReturns) {
  sim::Engine eng;
  ControlChannel chan{eng};
  std::vector<bool> transitions;
  Picos reconnected_at = -1;
  chan.controller().set_status_handler([&](bool up) {
    transitions.push_back(up);
    if (up) reconnected_at = eng.now();
  });
  eng.schedule_at(0, [&] { chan.set_link_available(false); });
  // Link heals 7 ms later; probes at +2, +6, +14 ms... → session back at
  // the first probe after 7 ms.
  eng.schedule_at(7 * kPicosPerMilli, [&] { chan.set_link_available(true); });
  eng.run();
  EXPECT_TRUE(chan.connected());
  EXPECT_EQ(chan.disconnects(), 1u);
  EXPECT_EQ(chan.reconnects(), 1u);
  EXPECT_EQ(transitions, (std::vector<bool>{false, true}));
  EXPECT_EQ(reconnected_at, 14 * kPicosPerMilli);
  EXPECT_EQ(chan.reconnect_probes(), 3u);
}

TEST(Channel, SessionUsableAfterReconnect) {
  sim::Engine eng;
  ControlChannel chan{eng};
  std::size_t delivered = 0;
  chan.switch_end().set_handler([&](Decoded) { ++delivered; });
  eng.schedule_at(0, [&] { chan.set_link_available(false); });
  eng.schedule_at(kPicosPerMilli, [&] { chan.set_link_available(true); });
  eng.schedule_at(50 * kPicosPerMilli, [&] { chan.controller().send(Hello{}); });
  eng.run();
  EXPECT_TRUE(chan.connected());
  EXPECT_EQ(delivered, 1u);
}

TEST(Channel, GivesUpAfterMaxProbesThenDirectKickRestores) {
  sim::Engine eng;
  ChannelConfig cfg;
  cfg.reconnect_max_attempts = 3;
  ControlChannel chan{eng, cfg};
  chan.set_link_available(false);
  eng.run();  // all probes fail; FSM gives up, queue drains
  EXPECT_FALSE(chan.connected());
  EXPECT_EQ(chan.reconnect_probes(), 3u);
  chan.set_link_available(true);  // direct kick after give-up
  eng.run();
  EXPECT_TRUE(chan.connected());
  EXPECT_EQ(chan.reconnects(), 1u);
}

TEST(Channel, FlapStormIsDeterministic) {
  auto run_once = [] {
    sim::Engine eng;
    ControlChannel chan{eng};
    std::size_t delivered = 0;
    chan.switch_end().set_handler([&](Decoded) { ++delivered; });
    for (int i = 0; i < 20; ++i) {
      eng.schedule_at(i * 3 * kPicosPerMilli,
                      [&chan, i] { chan.set_link_available(i % 2 != 0); });
      eng.schedule_at(i * 3 * kPicosPerMilli + kPicosPerMicro,
                      [&chan] { chan.controller().send(Hello{}); });
    }
    eng.run();
    return std::tuple{delivered, chan.disconnects(), chan.reconnects(),
                      chan.messages_lost_in_flight(),
                      chan.controller().messages_dropped()};
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace osnt::openflow
