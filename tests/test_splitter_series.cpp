// Trace splitting across ports + windowed rate series.
#include <gtest/gtest.h>

#include <set>

#include "osnt/gen/splitter.hpp"
#include "osnt/mon/rate_series.hpp"
#include "osnt/net/builder.hpp"
#include "osnt/net/flow.hpp"

namespace osnt {
namespace {

std::vector<net::PcapRecord> trace_with_flows(std::size_t flows,
                                              std::size_t per_flow) {
  std::vector<net::PcapRecord> recs;
  std::uint64_t t = 0;
  for (std::size_t p = 0; p < per_flow; ++p) {
    for (std::size_t f = 0; f < flows; ++f) {
      net::PacketBuilder b;
      const auto pkt =
          b.eth(net::MacAddr::from_index(1), net::MacAddr::from_index(2))
              .ipv4(net::Ipv4Addr::of(10, 0, 0, 1),
                    net::Ipv4Addr::of(10, 0, 1, static_cast<std::uint8_t>(f + 1)),
                    net::ipproto::kUdp)
              .udp(static_cast<std::uint16_t>(1000 + f), 5001)
              .build();
      net::PcapRecord rec;
      rec.ts_nanos = t;
      t += 1000;
      rec.data = pkt.data;
      rec.orig_len = static_cast<std::uint32_t>(pkt.size());
      recs.push_back(std::move(rec));
    }
  }
  return recs;
}

TEST(Splitter, PartitionsAllRecords) {
  const auto trace = trace_with_flows(16, 10);
  const auto sources = gen::split_trace(trace, 4);
  ASSERT_EQ(sources.size(), 4u);
  std::size_t total = 0;
  for (const auto& src : sources)
    if (src) total += src->trace_size();
  EXPECT_EQ(total, trace.size());
}

TEST(Splitter, FlowsNeverStraddlePorts) {
  const auto trace = trace_with_flows(16, 10);
  auto sources = gen::split_trace(trace, 4);
  std::unordered_map<std::uint64_t, std::size_t> flow_to_port;
  for (std::size_t port = 0; port < sources.size(); ++port) {
    if (!sources[port]) continue;
    while (auto tp = sources[port]->next()) {
      const auto flow = net::extract_flow(tp->pkt.bytes());
      ASSERT_TRUE(flow);
      const auto [it, inserted] =
          flow_to_port.try_emplace(flow->hash(), port);
      EXPECT_EQ(it->second, port) << "flow split across ports";
    }
  }
  EXPECT_EQ(flow_to_port.size(), 16u);
}

TEST(Splitter, SinglePortIsIdentity) {
  const auto trace = trace_with_flows(4, 3);
  const auto sources = gen::split_trace(trace, 1);
  ASSERT_EQ(sources.size(), 1u);
  ASSERT_TRUE(sources[0]);
  EXPECT_EQ(sources[0]->trace_size(), trace.size());
}

TEST(Splitter, ZeroPortsThrows) {
  EXPECT_THROW((void)gen::split_trace({}, 0), std::invalid_argument);
}

TEST(Splitter, NonIpRoundRobins) {
  std::vector<net::PcapRecord> recs;
  for (int i = 0; i < 8; ++i) {
    net::PacketBuilder b;
    const auto arp =
        b.eth(net::MacAddr::from_index(1), net::MacAddr::broadcast())
            .arp(1, net::MacAddr::from_index(1), net::Ipv4Addr::of(1, 1, 1, 1),
                 net::MacAddr{}, net::Ipv4Addr::of(1, 1, 1, 2))
            .build();
    net::PcapRecord rec;
    rec.ts_nanos = static_cast<std::uint64_t>(i);
    rec.data = arp.data;
    recs.push_back(std::move(rec));
  }
  const auto sources = gen::split_trace(recs, 4);
  for (const auto& src : sources) {
    ASSERT_TRUE(src);
    EXPECT_EQ(src->trace_size(), 2u);
  }
}

// -------------------------------------------------------------- series

TEST(RateSeries, BucketsAccumulate) {
  mon::RateSeries s{kPicosPerMilli};
  s.record(100, 1000);                    // bucket 0
  s.record(kPicosPerMilli + 1, 500);      // bucket 1
  s.record(kPicosPerMilli + 2, 500);      // bucket 1
  ASSERT_EQ(s.size(), 2u);
  EXPECT_EQ(s.bucket(0).frames, 1u);
  EXPECT_EQ(s.bucket(0).line_bytes, 1000u);
  EXPECT_EQ(s.bucket(1).frames, 2u);
  EXPECT_EQ(s.bucket(1).start, kPicosPerMilli);
}

TEST(RateSeries, GbpsMath) {
  mon::RateSeries s{kPicosPerMilli};
  // 1.25 MB in 1 ms = 10 Gb/s.
  s.record(0, 1'250'000);
  EXPECT_NEAR(s.bucket(0).gbps(s.bucket_width()), 10.0, 1e-9);
  EXPECT_NEAR(s.peak_gbps(), 10.0, 1e-9);
}

TEST(RateSeries, GapBucketsAreZero) {
  mon::RateSeries s{kPicosPerMilli};
  s.record(0, 100);
  s.record(5 * kPicosPerMilli, 100);
  ASSERT_EQ(s.size(), 6u);
  for (std::size_t i = 1; i < 5; ++i) EXPECT_EQ(s.bucket(i).frames, 0u);
}

TEST(RateSeries, FirstDipFindsTransition) {
  mon::RateSeries s{kPicosPerMilli};
  for (int ms = 0; ms < 10; ++ms) {
    if (ms == 4 || ms == 5) continue;  // the dip
    s.record(static_cast<Picos>(ms) * kPicosPerMilli + 1, 1'250'000);
  }
  EXPECT_EQ(s.first_dip_below(5.0), 4);
  EXPECT_EQ(s.first_dip_below(0.0001), 4);
  mon::RateSeries flat{kPicosPerMilli};
  flat.record(0, 100);
  EXPECT_EQ(flat.first_dip_below(1e-6), -1);
}

TEST(RateSeries, RejectsBadWidth) {
  EXPECT_THROW(mon::RateSeries{0}, std::invalid_argument);
}

TEST(RateSeries, NegativeTimeIgnored) {
  mon::RateSeries s{kPicosPerMilli};
  s.record(-5, 100);
  EXPECT_EQ(s.size(), 0u);
}

}  // namespace
}  // namespace osnt
