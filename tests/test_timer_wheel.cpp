// Hierarchical timing wheel invariants, and the tentpole determinism
// contract: routing bulk timers through the wheel yields a firing order
// bit-identical to routing them through the heap, under randomized
// schedule/cancel interleavings, across cascade boundaries, and at the
// horizon / top-level wrap where the wheel refuses entries and the
// engine spills them to the heap.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <tuple>
#include <vector>

#include "osnt/sim/engine.hpp"
#include "osnt/sim/timer_wheel.hpp"

namespace osnt::sim {
namespace {

constexpr Picos kTick = TimerWheel::kTickPicos;
constexpr Picos kHorizon =
    static_cast<Picos>(TimerWheel::kHorizonTicks) * kTick;

struct Fired {
  Picos time;
  std::uint32_t seq;
  std::uint32_t slot;
  friend bool operator==(const Fired&, const Fired&) = default;
};

std::vector<Fired> drain_all(TimerWheel& w, Picos bound) {
  std::vector<Fired> out;
  w.drain_until(bound, [&](Picos t, std::uint32_t seq, std::uint32_t slot) {
    out.push_back({t, seq, slot});
  });
  return out;
}

// ------------------------------------------------ admission boundaries

TEST(TimerWheel, RefusesAtOrBehindCursorAndSubTick) {
  TimerWheel w;
  w.ensure_capacity(4);
  // Quantized tick 0 == cursor tick: refused, even for nonzero times.
  EXPECT_FALSE(w.schedule(0, 0, 0));
  EXPECT_FALSE(w.schedule(kTick - 1, 1, 1));
  // First representable future tick is admitted.
  EXPECT_TRUE(w.schedule(kTick, 2, 2));
  EXPECT_EQ(w.pending(), 1u);
  EXPECT_EQ(w.scheduled(), 1u);
}

TEST(TimerWheel, RefusesAtOrPastHorizon) {
  TimerWheel w;
  w.ensure_capacity(4);
  // The last tick inside the top-level epoch is admitted...
  EXPECT_TRUE(w.schedule(kHorizon - kTick, 0, 0));
  // ...but the epoch boundary itself (top-level wrap) is refused.
  EXPECT_FALSE(w.schedule(kHorizon, 1, 1));
  EXPECT_FALSE(w.schedule(kHorizon + 123 * kTick, 2, 2));
  EXPECT_EQ(w.pending(), 1u);
}

// ------------------------------------------------ drain semantics

TEST(TimerWheel, DrainHandsBackExactArmTimeKeys) {
  TimerWheel w;
  w.ensure_capacity(8);
  // Sub-tick offsets must survive quantization: the bucket is coarse but
  // the entry's Picos time is exact.
  const std::vector<Fired> in = {
      {3 * kTick + 17, 10, 0},
      {3 * kTick + 1, 11, 1},
      {5 * kTick, 12, 2},
      {700 * kTick + 9999, 13, 3},  // level 1
  };
  for (const auto& f : in) EXPECT_TRUE(w.schedule(f.time, f.seq, f.slot));
  auto out = drain_all(w, kHorizon);
  ASSERT_EQ(out.size(), in.size());
  // Intra-bucket order is a list walk, not sorted — the heap re-sorts.
  // Compare as sets of exact keys.
  auto key = [](const Fired& f) {
    return std::tuple{f.time, f.seq, f.slot};
  };
  std::vector<Fired> want = in;
  std::ranges::sort(want, {}, key);
  std::ranges::sort(out, {}, key);
  EXPECT_EQ(out, want);
  EXPECT_EQ(w.pending(), 0u);
  EXPECT_EQ(w.drained(), in.size());
}

TEST(TimerWheel, NextDueIsAConservativeLowerBound) {
  TimerWheel w;
  w.ensure_capacity(2);
  // Level-2 entry: its bucket spans 2^32 ps, so next_due() reports the
  // bucket base, well before the entry's actual time.
  const Picos t = (0x030201u) * kTick + 5;
  ASSERT_TRUE(w.schedule(t, 0, 0));
  EXPECT_LE(w.next_due(), t);
  // Draining up to next_due()-1 must deliver nothing.
  EXPECT_TRUE(drain_all(w, w.next_due() - 1).empty());
  EXPECT_EQ(w.pending(), 1u);
  // Draining to the exact time delivers it.
  const auto out = drain_all(w, t);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].time, t);
}

TEST(TimerWheel, CascadePreservesEntriesAcrossEveryLevelBoundary) {
  TimerWheel w;
  w.ensure_capacity(16);
  // Straddle each level boundary: the last bucket of level k and the
  // first of level k+1.
  std::vector<Picos> times;
  for (std::uint32_t lvl = 1; lvl < TimerWheel::kLevels; ++lvl) {
    const std::uint64_t span = std::uint64_t{1} << (8 * lvl);
    times.push_back(static_cast<Picos>(span - 1) * kTick);      // below
    times.push_back(static_cast<Picos>(span) * kTick);          // at
    times.push_back(static_cast<Picos>(span + 1) * kTick + 7);  // above
  }
  for (std::uint32_t i = 0; i < times.size(); ++i) {
    ASSERT_TRUE(w.schedule(times[i], i, i)) << "time " << times[i];
  }
  auto out = drain_all(w, kHorizon);
  ASSERT_EQ(out.size(), times.size());
  std::ranges::sort(out, {}, &Fired::time);
  std::ranges::sort(times);
  for (std::size_t i = 0; i < times.size(); ++i) {
    EXPECT_EQ(out[i].time, times[i]);
  }
  EXPECT_GT(w.cascaded(), 0u);
}

TEST(TimerWheel, PartialDrainCascadesWithoutDelivering) {
  TimerWheel w;
  w.ensure_capacity(2);
  // Level-1 entry whose bucket base is well before its exact tick: a
  // drain bounded between the two cascades it down without delivering.
  const std::uint64_t qt = (3u << 8) | 200u;  // bucket base tick 3*256
  const Picos t = static_cast<Picos>(qt) * kTick;
  ASSERT_TRUE(w.schedule(t, 0, 0));
  const Picos base = static_cast<Picos>(qt & ~0xffull) * kTick;
  ASSERT_LT(base, t);
  EXPECT_TRUE(drain_all(w, t - kTick).empty());
  EXPECT_EQ(w.pending(), 1u);     // still pending…
  EXPECT_GE(w.cascaded(), 1u);    // …but now parked in level 0
  const auto out = drain_all(w, t);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].time, t);
}

TEST(TimerWheel, CancelOfCascadedEntryUnlinksFromNewBucket) {
  TimerWheel w;
  w.ensure_capacity(2);
  const std::uint64_t qt = (5u << 8) | 77u;
  const Picos t = static_cast<Picos>(qt) * kTick;
  ASSERT_TRUE(w.schedule(t, 0, 0));
  // Cascade it into level 0 without delivering, then cancel: the unlink
  // must hit the re-linked bucket, not the original level-1 one.
  EXPECT_TRUE(drain_all(w, t - kTick).empty());
  ASSERT_EQ(w.pending(), 1u);
  w.cancel(0);
  EXPECT_EQ(w.pending(), 0u);
  EXPECT_EQ(w.cancelled(), 1u);
  EXPECT_TRUE(drain_all(w, kHorizon).empty());
}

TEST(TimerWheel, CancelMiddleOfBucketChain) {
  TimerWheel w;
  w.ensure_capacity(3);
  // Three entries in the same bucket; cancel the middle link.
  for (std::uint32_t i = 0; i < 3; ++i) {
    ASSERT_TRUE(w.schedule(9 * kTick + i, i, i));
  }
  w.cancel(1);
  auto out = drain_all(w, kHorizon);
  ASSERT_EQ(out.size(), 2u);
  std::ranges::sort(out, {}, &Fired::slot);
  EXPECT_EQ(out[0].slot, 0u);
  EXPECT_EQ(out[1].slot, 2u);
}

// ---------------------------------------- engine integration & spills

TEST(EngineBulkTimers, InterleaveFifoWithRegularEvents) {
  Engine e;
  std::vector<int> order;
  const Picos t = 10 * kTick;
  e.schedule_at(t, [&] { order.push_back(0); });
  e.schedule_bulk_at(t, [&] { order.push_back(1); });
  e.schedule_at(t, [&] { order.push_back(2); });
  e.schedule_bulk_at(t, [&] { order.push_back(3); });
  // Inside the cursor's current tick: the wheel refuses it, so it spills.
  e.schedule_bulk_at(kTick - 1, [&] { order.push_back(4); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{4, 0, 1, 2, 3}));
  EXPECT_EQ(e.wheel().scheduled(), 2u);
  EXPECT_EQ(e.wheel_spilled(), 1u);
}

TEST(EngineBulkTimers, CancelOnWheelPathReleasesSlotEagerly) {
  Engine e;
  bool fired = false;
  const EventId id = e.schedule_bulk_at(10 * kTick, [&] { fired = true; });
  EXPECT_EQ(e.wheel().pending(), 1u);
  EXPECT_TRUE(e.cancel(id));
  EXPECT_EQ(e.wheel().pending(), 0u);
  EXPECT_EQ(e.wheel().cancelled(), 1u);
  EXPECT_FALSE(e.cancel(id));
  e.schedule_at(20 * kTick, [] {});
  e.run();
  EXPECT_FALSE(fired);
  // The recycled slot's new occupant is immune to the stale id.
  bool fired2 = false;
  const EventId id2 = e.schedule_bulk_at(30 * kTick, [&] { fired2 = true; });
  EXPECT_NE(id, id2);
  EXPECT_FALSE(e.cancel(id));
  e.run();
  EXPECT_TRUE(fired2);
}

TEST(EngineBulkTimers, FarFutureSpillsToHeapAndStillFires) {
  Engine e;
  Picos fired_at = -1;
  const Picos far = kHorizon + 5 * kTick;  // past the wheel's top level
  e.schedule_bulk_at(far, [&] { fired_at = e.now(); });
  EXPECT_EQ(e.wheel_spilled(), 1u);
  EXPECT_FALSE(e.wheel().has_pending());
  e.run();
  EXPECT_EQ(fired_at, far);
}

TEST(EngineBulkTimers, WrapPastTopLevelKeepsTotalOrder) {
  // Timers straddling the 2^48 ps epoch boundary: the in-epoch one rides
  // the wheel, the post-wrap ones spill, and the merged order is exact.
  Engine e;
  std::vector<int> order;
  e.schedule_bulk_at(kHorizon - 2 * kTick, [&] { order.push_back(0); });
  e.schedule_bulk_at(kHorizon + kTick, [&] { order.push_back(1); });
  e.schedule_bulk_at(kHorizon + kTick, [&] { order.push_back(2); });
  EXPECT_EQ(e.wheel().scheduled(), 1u);
  EXPECT_EQ(e.wheel_spilled(), 2u);
  e.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(e.now(), kHorizon + kTick);
}

TEST(EngineBulkTimers, DisabledWheelRoutesEverythingToHeap) {
  Engine e;
  e.set_wheel_enabled(false);
  int fired = 0;
  for (int i = 0; i < 10; ++i) {
    e.schedule_bulk_at((i + 1) * kTick, [&] { ++fired; });
  }
  EXPECT_FALSE(e.wheel().has_pending());
  EXPECT_EQ(e.wheel().scheduled(), 0u);
  EXPECT_EQ(e.wheel_spilled(), 0u);  // only counts refusals while enabled
  e.run();
  EXPECT_EQ(fired, 10);
}

// ------------------------------------------- randomized equivalence

// One randomized scenario: a mix of regular events, bulk timers at
// near/far/sub-tick/past-horizon times, nested re-arms, and cancels of a
// random subset. Returns the exact firing sequence (tag, time).
std::vector<std::pair<int, Picos>> run_scenario(bool wheel,
                                                std::uint32_t seed) {
  Engine e;
  e.set_wheel_enabled(wheel);
  std::mt19937 rng(seed);
  std::vector<std::pair<int, Picos>> fired;
  std::vector<EventId> ids;
  int tag = 0;

  auto random_time = [&]() -> Picos {
    switch (rng() % 5) {
      case 0: return static_cast<Picos>(rng() % (4 * kTick));  // sub-tick-ish
      case 1: return static_cast<Picos>(rng() % 100000) * kTick;  // lvl 0–1
      case 2: return static_cast<Picos>(rng() % 0x01000000u) * kTick;
      case 3: return kHorizon - static_cast<Picos>(rng() % 1000) * kTick;
      default: return kHorizon + static_cast<Picos>(rng() % 1000) * kTick;
    }
  };

  for (int i = 0; i < 400; ++i) {
    const Picos t = random_time();
    const int my_tag = tag++;
    if (rng() % 3 == 0) {
      ids.push_back(e.schedule_at(t, [&, my_tag] {
        fired.emplace_back(my_tag, e.now());
      }));
    } else {
      ids.push_back(e.schedule_bulk_at(t, [&, my_tag, t] {
        fired.emplace_back(my_tag, e.now());
        // Occasional nested re-arm mid-run, like an RTO backoff.
        if (my_tag % 7 == 0) {
          const int nested = 100000 + my_tag;
          e.schedule_bulk_in(static_cast<Picos>(t % 977) * kTick,
                             [&, nested] {
                               fired.emplace_back(nested, e.now());
                             });
        }
      }));
    }
  }
  // Cancel a deterministic random subset before anything runs.
  for (const EventId id : ids) {
    if (rng() % 4 == 0) e.cancel(id);
  }
  e.run();
  return fired;
}

TEST(EngineBulkTimers, RandomizedFiringOrderMatchesHeapExactly) {
  for (std::uint32_t seed : {1u, 7u, 42u, 1234u}) {
    const auto with_wheel = run_scenario(true, seed);
    const auto with_heap = run_scenario(false, seed);
    EXPECT_EQ(with_wheel, with_heap) << "seed " << seed;
    EXPECT_FALSE(with_wheel.empty()) << "seed " << seed;
  }
}

TEST(EngineBulkTimers, RandomizedScenarioExercisesWheelPaths) {
  // Guard against the equivalence test silently degenerating: the wheel
  // engine must actually schedule, cancel, cascade, and spill.
  Engine e;
  e.set_wheel_enabled(true);
  std::mt19937 rng(42);
  std::vector<EventId> ids;
  for (int i = 0; i < 400; ++i) {
    const Picos t = static_cast<Picos>(rng() % 0x01000000u) * kTick + 1;
    ids.push_back(e.schedule_bulk_at(t, [] {}));
  }
  for (const EventId id : ids) {
    if (rng() % 4 == 0) e.cancel(id);
  }
  e.run();
  EXPECT_GT(e.wheel().scheduled(), 0u);
  EXPECT_GT(e.wheel().cancelled(), 0u);
  EXPECT_GT(e.wheel().drained(), 0u);
  EXPECT_GT(e.wheel().cascaded(), 0u);
}

TEST(EngineBulkTimers, DueWheelBucketNotMaskedByCancelledHeapHead) {
  // Regression guard for the drain-bound ordering: a cancelled heap entry
  // earlier than a due wheel timer must not delay the wheel drain — the
  // skim has to run before the bound is computed.
  Engine e;
  std::vector<int> order;
  const EventId dead = e.schedule_at(1, [&] { order.push_back(-1); });
  e.schedule_bulk_at(2 * kTick, [&] { order.push_back(0); });
  e.schedule_at(3 * kTick, [&] { order.push_back(1); });
  e.cancel(dead);
  e.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1}));
}

}  // namespace
}  // namespace osnt::sim
