// IPv4 fragmentation / reassembly round trips and edge cases.
#include <gtest/gtest.h>

#include <algorithm>

#include "osnt/common/random.hpp"
#include "osnt/net/builder.hpp"
#include "osnt/net/checksum.hpp"
#include "osnt/gen/replay.hpp"
#include "osnt/gen/template_gen.hpp"
#include "osnt/net/fragment.hpp"

namespace osnt::net {
namespace {

Packet big_udp(std::size_t payload, std::uint16_t ip_id = 0x4242) {
  PacketBuilder b;
  Packet p = b.eth(MacAddr::from_index(1), MacAddr::from_index(2))
                 .ipv4(Ipv4Addr::of(10, 0, 0, 1), Ipv4Addr::of(10, 0, 1, 1),
                       ipproto::kUdp)
                 .udp(1024, 5001)
                 .payload_random(payload, 99)
                 .build();
  // Stamp a recognizable IP id for reassembly keying.
  store_be16(p.data.data() + EthHeader::kSize + 4, ip_id);
  const std::size_t hlen = 20;
  store_be16(p.data.data() + EthHeader::kSize + 10, 0);
  const std::uint16_t ck =
      internet_checksum(ByteSpan{p.data.data() + EthHeader::kSize, hlen});
  store_be16(p.data.data() + EthHeader::kSize + 10, ck);
  return p;
}

TEST(Fragment, SmallPacketPassesThrough) {
  const Packet p = big_udp(100);
  const auto frags = fragment_ipv4(p, 1500);
  ASSERT_EQ(frags.size(), 1u);
  EXPECT_EQ(frags[0].data, p.data);
}

TEST(Fragment, SplitsWithValidHeaders) {
  const Packet p = big_udp(3000);
  const auto frags = fragment_ipv4(p, 1500);
  ASSERT_GE(frags.size(), 3u);
  std::size_t total_payload = 0;
  for (std::size_t i = 0; i < frags.size(); ++i) {
    const auto parsed = parse_packet(frags[i].bytes());
    ASSERT_TRUE(parsed);
    ASSERT_EQ(parsed->l3, L3Kind::kIpv4);
    EXPECT_LE(parsed->ipv4.total_length, 1500);
    EXPECT_EQ(parsed->ipv4.more_fragments, i + 1 < frags.size());
    // Every header checksum verifies.
    const ByteSpan hdr{frags[i].data.data() + parsed->l3_offset,
                       parsed->ipv4.header_len()};
    EXPECT_EQ(internet_checksum(hdr), 0u);
    total_payload += parsed->ipv4.total_length - parsed->ipv4.header_len();
    if (i > 0) {
      EXPECT_GT(parsed->ipv4.fragment_offset, 0);
    }
  }
  EXPECT_EQ(total_payload, 3000u + UdpHeader::kSize);
}

TEST(Fragment, OffsetsAreEightByteAligned) {
  const auto frags = fragment_ipv4(big_udp(4000), 999);
  for (const auto& f : frags) {
    const auto parsed = parse_packet(f.bytes());
    const std::size_t payload =
        parsed->ipv4.total_length - parsed->ipv4.header_len();
    if (parsed->ipv4.more_fragments) {
      EXPECT_EQ(payload % 8, 0u);
    }
  }
}

TEST(Fragment, RejectsBadInput) {
  PacketBuilder b;
  const Packet arp = b.eth(MacAddr::from_index(1), MacAddr::broadcast())
                         .arp(1, MacAddr::from_index(1), Ipv4Addr::of(1, 1, 1, 1),
                              MacAddr{}, Ipv4Addr::of(1, 1, 1, 2))
                         .build();
  EXPECT_THROW((void)fragment_ipv4(arp, 1500), std::invalid_argument);
  EXPECT_THROW((void)fragment_ipv4(big_udp(3000), 20), std::invalid_argument);
}

TEST(Fragment, RespectsDontFragment) {
  Packet p = big_udp(3000);
  // Set DF.
  const std::uint16_t ff = load_be16(p.data.data() + EthHeader::kSize + 6);
  store_be16(p.data.data() + EthHeader::kSize + 6,
             static_cast<std::uint16_t>(ff | (1 << 14)));
  EXPECT_THROW((void)fragment_ipv4(p, 1500), std::invalid_argument);
}

TEST(Reassembly, InOrderRoundTrip) {
  const Packet p = big_udp(3000);
  const auto frags = fragment_ipv4(p, 1500);
  Ipv4Reassembler r;
  std::optional<Packet> whole;
  for (const auto& f : frags) {
    auto got = r.add(f, 0);
    if (got) whole = std::move(got);
  }
  ASSERT_TRUE(whole);
  EXPECT_EQ(r.completed(), 1u);
  EXPECT_EQ(r.pending(), 0u);
  // The reassembled datagram's L3 payload matches the original.
  const auto po = parse_packet(p.bytes());
  const auto pw = parse_packet(whole->bytes());
  ASSERT_TRUE(po && pw);
  EXPECT_EQ(pw->ipv4.total_length, po->ipv4.total_length);
  EXPECT_FALSE(pw->ipv4.more_fragments);
  const ByteSpan orig{p.data.data() + po->l3_offset, po->ipv4.total_length};
  const ByteSpan back{whole->data.data() + pw->l3_offset,
                      pw->ipv4.total_length};
  // Payload identical beyond the (re-finalized) header checksum bytes.
  EXPECT_TRUE(std::equal(orig.begin() + 20, orig.end(), back.begin() + 20));
}

TEST(Reassembly, OutOfOrderAndShuffled) {
  Rng rng{77};
  const Packet p = big_udp(8000);
  auto frags = fragment_ipv4(p, 576);
  ASSERT_GT(frags.size(), 10u);
  // Fisher-Yates shuffle with our deterministic RNG.
  for (std::size_t i = frags.size() - 1; i > 0; --i)
    std::swap(frags[i], frags[rng.uniform_int(0, i)]);
  Ipv4Reassembler r;
  std::optional<Packet> whole;
  for (const auto& f : frags) {
    auto got = r.add(f, 0);
    if (got) {
      EXPECT_FALSE(whole) << "completed twice";
      whole = std::move(got);
    }
  }
  ASSERT_TRUE(whole);
  const auto pw = parse_packet(whole->bytes());
  EXPECT_EQ(pw->ipv4.total_length, 8000 + 8 + 20);
}

TEST(Reassembly, UnfragmentedPassesThrough) {
  Ipv4Reassembler r;
  const Packet p = big_udp(100);
  const auto got = r.add(p, 0);
  ASSERT_TRUE(got);
  EXPECT_EQ(got->data, p.data);
  EXPECT_EQ(r.pending(), 0u);
}

TEST(Reassembly, InterleavedDatagramsKeyedById) {
  const auto fa = fragment_ipv4(big_udp(3000, 0x1111), 1500);
  const auto fb = fragment_ipv4(big_udp(3000, 0x2222), 1500);
  Ipv4Reassembler r;
  int done = 0;
  for (std::size_t i = 0; i < std::max(fa.size(), fb.size()); ++i) {
    if (i < fa.size() && r.add(fa[i], 0)) ++done;
    if (i < fb.size() && r.add(fb[i], 0)) ++done;
  }
  EXPECT_EQ(done, 2);
}

TEST(Reassembly, MissingFragmentNeverCompletes) {
  auto frags = fragment_ipv4(big_udp(3000), 1500);
  frags.erase(frags.begin() + 1);  // drop a middle fragment
  Ipv4Reassembler r;
  for (const auto& f : frags) EXPECT_FALSE(r.add(f, 0));
  EXPECT_EQ(r.pending(), 1u);
  // ...and expires after the timeout.
  EXPECT_EQ(r.expire(31 * kPicosPerSec), 1u);
  EXPECT_EQ(r.pending(), 0u);
}

TEST(Reassembly, OverflowBoundsPartialState) {
  Ipv4Reassembler::Config cfg;
  cfg.max_pending = 2;
  Ipv4Reassembler r{cfg};
  for (std::uint16_t id = 1; id <= 5; ++id) {
    const auto frags = fragment_ipv4(big_udp(3000, id), 1500);
    (void)r.add(frags[0], 0);  // only the head: stays pending
  }
  EXPECT_EQ(r.pending(), 2u);
  EXPECT_EQ(r.dropped_overflow(), 3u);
}

TEST(FragmentingSource, EmitsValidFragmentStream) {
  // Jumbo datagrams from a template, fragmented to a 1500 MTU, then
  // reassembled: the stream must reconstruct every original datagram.
  // TemplateSource clamps at 1518, so drive with handcrafted jumbos.
  std::vector<net::PcapRecord> recs;
  for (int i = 0; i < 5; ++i) {
    const Packet p = big_udp(5000, static_cast<std::uint16_t>(100 + i));
    net::PcapRecord rec;
    rec.ts_nanos = static_cast<std::uint64_t>(i) * 10'000;
    rec.data = p.data;
    rec.orig_len = static_cast<std::uint32_t>(p.size());
    recs.push_back(std::move(rec));
  }
  gen::FragmentingSource src{
      std::make_unique<gen::PcapReplaySource>(std::move(recs)), 1500};
  Ipv4Reassembler r;
  int whole = 0, frags = 0;
  while (auto tp = src.next()) {
    ++frags;
    if (r.add(tp->pkt, 0)) ++whole;
  }
  EXPECT_EQ(whole, 5);
  EXPECT_GT(frags, 15);  // 5 datagrams × ≥4 fragments
}

TEST(FragmentingSource, PassThroughForSmallFrames) {
  gen::TemplateConfig tc;
  tc.count = 3;
  gen::FragmentingSource src{
      std::make_unique<gen::TemplateSource>(
          tc, std::make_unique<gen::FixedSize>(256)),
      1500};
  int n = 0;
  while (auto tp = src.next()) {
    EXPECT_EQ(tp->pkt.wire_len(), 256u);
    ++n;
  }
  EXPECT_EQ(n, 3);
}

TEST(FragmentingSource, RejectsBadConfig) {
  EXPECT_THROW(gen::FragmentingSource(nullptr, 1500), std::invalid_argument);
  gen::TemplateConfig tc;
  EXPECT_THROW(gen::FragmentingSource(
                   std::make_unique<gen::TemplateSource>(
                       tc, std::make_unique<gen::FixedSize>(64)),
                   20),
               std::invalid_argument);
}

}  // namespace
}  // namespace osnt::net
