// Traffic generation: rate math, gap/size models, template source, PCAP
// replay, and the TX pipeline driving a real MAC.
#include <gtest/gtest.h>

#include "osnt/common/stats.hpp"
#include "osnt/gen/models.hpp"
#include "osnt/gen/rate.hpp"
#include "osnt/gen/replay.hpp"
#include "osnt/gen/template_gen.hpp"
#include "osnt/gen/tx_pipeline.hpp"
#include "osnt/hw/port.hpp"
#include "osnt/net/parser.hpp"
#include "osnt/tstamp/clock.hpp"

namespace osnt::gen {
namespace {

// ------------------------------------------------------------------ rate

TEST(RateController, FullLineRateEqualsAirTime) {
  RateController rc{RateSpec::line_rate(1.0)};
  // 64 B frame → 84 B line → 67.2 ns.
  EXPECT_EQ(rc.departure_interval(84), 67'200);
  EXPECT_NEAR(rc.offered_gbps(84), 10.0, 1e-9);
}

TEST(RateController, HalfLineRateDoublesInterval) {
  RateController rc{RateSpec::line_rate(0.5)};
  EXPECT_EQ(rc.departure_interval(84), 134'400);
  EXPECT_NEAR(rc.offered_gbps(84), 5.0, 1e-9);
}

TEST(RateController, GbpsMode) {
  RateController rc{RateSpec::gbps(1.0)};
  EXPECT_NEAR(rc.offered_gbps(84), 1.0, 1e-9);
}

TEST(RateController, PpsMode) {
  RateController rc{RateSpec::pps(1'000'000)};
  EXPECT_EQ(rc.departure_interval(84), kPicosPerMicro);
}

TEST(RateController, GapMode) {
  RateController rc{RateSpec::gap_ns(100)};
  EXPECT_EQ(rc.departure_interval(84), 67'200 + 100'000);
}

TEST(RateController, NeverExceedsLineRate) {
  RateController rc{RateSpec::pps(100'000'000)};  // absurd pps
  EXPECT_GE(rc.departure_interval(84), 67'200);
}

// ------------------------------------------------------------- gap models

TEST(GapModels, ConstantIsExact) {
  Rng rng{1};
  ConstantGap g;
  EXPECT_EQ(g.sample(rng, 1000, 10), 1000);
  EXPECT_EQ(g.sample(rng, 5, 10), 10);  // clamped to air time
}

TEST(GapModels, PoissonPreservesMean) {
  Rng rng{2};
  PoissonGap g;
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i)
    sum += static_cast<double>(g.sample(rng, 1'000'000, 1));
  EXPECT_NEAR(sum / n, 1e6, 1e4);
}

TEST(GapModels, BurstAlternatesLineRateAndIdle) {
  Rng rng{3};
  BurstGap g{4};
  const Picos mean = 1000, air = 100;
  Picos total = 0;
  int line_rate_gaps = 0;
  for (int i = 0; i < 4; ++i) {
    const Picos s = g.sample(rng, mean, air);
    total += s;
    if (s == air) ++line_rate_gaps;
  }
  EXPECT_EQ(line_rate_gaps, 3);       // 3 back-to-back + 1 idle
  EXPECT_EQ(total, 4 * mean);         // long-run mean preserved
}

TEST(GapModels, ParetoPreservesMeanRoughly) {
  Rng rng{6};
  ParetoGap g{1.5};
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i)
    sum += static_cast<double>(g.sample(rng, 1'000'000, 1));
  // Heavy tail: the empirical mean converges slowly; 15% is plenty tight
  // to catch a broken rescale.
  EXPECT_NEAR(sum / n, 1e6, 1.5e5);
}

TEST(GapModels, ParetoIsBurstierThanPoisson) {
  Rng rng{7};
  ParetoGap pareto{1.5};
  PoissonGap poisson;
  RunningStats sp, sq;
  for (int i = 0; i < 100000; ++i) {
    sp.add(static_cast<double>(pareto.sample(rng, 1'000'000, 1)));
    sq.add(static_cast<double>(poisson.sample(rng, 1'000'000, 1)));
  }
  // Coefficient of variation well above the exponential's 1.
  EXPECT_GT(sp.stddev() / sp.mean(), 1.5 * sq.stddev() / sq.mean());
}

TEST(GapModels, ParetoRejectsBadAlpha) {
  EXPECT_THROW(ParetoGap{1.0}, std::invalid_argument);
  EXPECT_THROW(ParetoGap{3.0}, std::invalid_argument);
}

// ------------------------------------------------------------ size models

TEST(SizeModels, FixedAlwaysSame) {
  Rng rng{1};
  FixedSize s{512};
  for (int i = 0; i < 10; ++i) EXPECT_EQ(s.sample(rng), 512u);
}

TEST(SizeModels, UniformInBounds) {
  Rng rng{1};
  UniformSize s{64, 1518};
  for (int i = 0; i < 1000; ++i) {
    const auto v = s.sample(rng);
    EXPECT_GE(v, 64u);
    EXPECT_LE(v, 1518u);
  }
}

TEST(SizeModels, ImixMixtureRatios) {
  Rng rng{4};
  ImixSize s;
  int small = 0, mid = 0, big = 0;
  const int n = 120000;
  for (int i = 0; i < n; ++i) {
    switch (s.sample(rng)) {
      case 64: ++small; break;
      case 594: ++mid; break;
      case 1518: ++big; break;
      default: FAIL() << "unexpected IMIX size";
    }
  }
  EXPECT_NEAR(static_cast<double>(small) / n, 7.0 / 12, 0.01);
  EXPECT_NEAR(static_cast<double>(mid) / n, 4.0 / 12, 0.01);
  EXPECT_NEAR(static_cast<double>(big) / n, 1.0 / 12, 0.01);
}

TEST(SizeModels, WeightedFollowsWeights) {
  Rng rng{5};
  WeightedSize s{{{100, 1.0}, {200, 3.0}}};
  int hits200 = 0;
  const int n = 40000;
  for (int i = 0; i < n; ++i)
    if (s.sample(rng) == 200) ++hits200;
  EXPECT_NEAR(static_cast<double>(hits200) / n, 0.75, 0.02);
}

TEST(SizeModels, WeightedRejectsEmptyAndBad) {
  EXPECT_THROW(WeightedSize{{}}, std::invalid_argument);
  EXPECT_THROW((WeightedSize{{{64, -1.0}}}), std::invalid_argument);
}

// -------------------------------------------------------- template source

TEST(TemplateSource, ProducesRequestedCount) {
  TemplateConfig tc;
  tc.count = 5;
  TemplateSource src{tc, std::make_unique<FixedSize>(64)};
  int n = 0;
  while (src.next()) ++n;
  EXPECT_EQ(n, 5);
  src.rewind();
  EXPECT_TRUE(src.next());
}

TEST(TemplateSource, FramesAreValidUdp) {
  TemplateConfig tc;
  tc.count = 3;
  TemplateSource src{tc, std::make_unique<FixedSize>(256)};
  while (auto tp = src.next()) {
    EXPECT_EQ(tp->pkt.wire_len(), 256u);
    const auto parsed = net::parse_packet(tp->pkt.bytes());
    ASSERT_TRUE(parsed);
    EXPECT_EQ(parsed->l4, net::L4Kind::kUdp);
    EXPECT_FALSE(tp->gap_hint);  // synthetic: rate controller paces
  }
}

TEST(TemplateSource, FlowsRotate) {
  TemplateConfig tc;
  tc.count = 4;
  tc.flow_count = 2;
  tc.vary_dst_ip = true;
  TemplateSource src{tc, std::make_unique<FixedSize>(128)};
  std::vector<std::uint32_t> dsts;
  while (auto tp = src.next()) {
    const auto parsed = net::parse_packet(tp->pkt.bytes());
    dsts.push_back(parsed->ipv4.dst.v);
  }
  ASSERT_EQ(dsts.size(), 4u);
  EXPECT_EQ(dsts[0], dsts[2]);
  EXPECT_EQ(dsts[1], dsts[3]);
  EXPECT_EQ(dsts[1], dsts[0] + 1);
}

TEST(TemplateSource, VlanTagging) {
  TemplateConfig tc;
  tc.count = 1;
  tc.vlan_id = 42;
  TemplateSource src{tc, std::make_unique<FixedSize>(128)};
  const auto tp = src.next();
  ASSERT_TRUE(tp);
  const auto parsed = net::parse_packet(tp->pkt.bytes());
  ASSERT_TRUE(parsed && parsed->vlan);
  EXPECT_EQ(parsed->vlan->vid, 42);
}

TEST(TemplateSource, NullSizeModelThrows) {
  EXPECT_THROW(TemplateSource(TemplateConfig{}, nullptr),
               std::invalid_argument);
}

// ------------------------------------------------------------ pcap replay

std::vector<net::PcapRecord> make_trace(std::size_t n, std::uint64_t gap_ns) {
  std::vector<net::PcapRecord> recs;
  TemplateConfig tc;
  tc.count = n;
  TemplateSource src{tc, std::make_unique<FixedSize>(128)};
  std::uint64_t t = 1'000'000;
  while (auto tp = src.next()) {
    net::PcapRecord r;
    r.ts_nanos = t;
    t += gap_ns;
    r.orig_len = static_cast<std::uint32_t>(tp->pkt.size());
    r.data = tp->pkt.data;
    recs.push_back(std::move(r));
  }
  return recs;
}

TEST(PcapReplay, AsRecordedGaps) {
  PcapReplaySource src{make_trace(3, 500)};
  const auto a = src.next();
  ASSERT_TRUE(a && a->gap_hint);
  EXPECT_EQ(*a->gap_hint, 500 * kPicosPerNano);
}

TEST(PcapReplay, SpeedupDividesGaps) {
  ReplayConfig cfg;
  cfg.speedup = 2.0;
  PcapReplaySource src{make_trace(3, 500), cfg};
  const auto a = src.next();
  ASSERT_TRUE(a && a->gap_hint);
  EXPECT_EQ(*a->gap_hint, 250 * kPicosPerNano);
}

TEST(PcapReplay, LoopsThroughTrace) {
  ReplayConfig cfg;
  cfg.loops = 3;
  PcapReplaySource src{make_trace(2, 100), cfg};
  int n = 0;
  while (src.next()) ++n;
  EXPECT_EQ(n, 6);
}

TEST(PcapReplay, IgnoreTimingLeavesNoHints) {
  ReplayConfig cfg;
  cfg.timing = ReplayTiming::kIgnore;
  PcapReplaySource src{make_trace(2, 100), cfg};
  EXPECT_FALSE(src.next()->gap_hint);
}

TEST(PcapReplay, EmptyTraceThrows) {
  EXPECT_THROW(PcapReplaySource(std::vector<net::PcapRecord>{}),
               std::invalid_argument);
}

// ------------------------------------------------------------ tx pipeline

struct TxFixture {
  sim::Engine eng;
  hw::EthPort a{eng}, b{eng};
  tstamp::GpsModel gps;
  tstamp::DisciplinedClock clock{gps};
  std::vector<net::Packet> received;

  TxFixture() {
    hw::connect(a, b);
    b.rx().set_handler([this](net::Packet p, Picos, Picos) {
      received.push_back(std::move(p));
    });
  }
};

TEST(TxPipeline, SendsAllFramesAtLineRate) {
  TxFixture f;
  gen::TxConfig cfg;
  cfg.rate = RateSpec::line_rate(1.0);
  TxPipeline tx{f.eng, f.a.tx(), f.clock, cfg};
  TemplateConfig tc;
  tc.count = 100;
  tx.set_source(std::make_unique<TemplateSource>(
      tc, std::make_unique<FixedSize>(64)));
  tx.start();
  f.eng.run();
  EXPECT_EQ(tx.frames_sent(), 100u);
  EXPECT_EQ(f.received.size(), 100u);
  EXPECT_NEAR(tx.achieved_gbps(), 10.0, 0.05);
}

TEST(TxPipeline, RateAccuracyAtFraction) {
  TxFixture f;
  gen::TxConfig cfg;
  cfg.rate = RateSpec::line_rate(0.4);
  TxPipeline tx{f.eng, f.a.tx(), f.clock, cfg};
  TemplateConfig tc;
  tc.count = 1000;
  tx.set_source(std::make_unique<TemplateSource>(
      tc, std::make_unique<FixedSize>(512)));
  tx.start();
  f.eng.run();
  EXPECT_NEAR(tx.achieved_gbps(), 4.0, 0.05);
}

TEST(TxPipeline, EmbedsMonotonicSequence) {
  TxFixture f;
  TxPipeline tx{f.eng, f.a.tx(), f.clock};
  TemplateConfig tc;
  tc.count = 10;
  tx.set_source(std::make_unique<TemplateSource>(
      tc, std::make_unique<FixedSize>(128)));
  tx.start();
  f.eng.run();
  ASSERT_EQ(f.received.size(), 10u);
  std::uint32_t expected = 0;
  for (const auto& p : f.received) {
    const auto stamp =
        tstamp::extract_timestamp(p.bytes(), tstamp::kDefaultEmbedOffset);
    ASSERT_TRUE(stamp);
    EXPECT_EQ(stamp->seq, expected++);
  }
}

TEST(TxPipeline, StopHaltsGeneration) {
  TxFixture f;
  gen::TxConfig cfg;
  cfg.rate = RateSpec::pps(1'000'000);
  TxPipeline tx{f.eng, f.a.tx(), f.clock, cfg};
  TemplateConfig tc;  // unbounded
  tx.set_source(std::make_unique<TemplateSource>(
      tc, std::make_unique<FixedSize>(64)));
  tx.start();
  f.eng.run_until(100 * kPicosPerMicro);
  tx.stop();
  f.eng.run();
  EXPECT_NEAR(static_cast<double>(tx.frames_sent()), 100.0, 2.0);
}

TEST(TxPipeline, StartWithoutSourceThrows) {
  TxFixture f;
  TxPipeline tx{f.eng, f.a.tx(), f.clock};
  EXPECT_THROW(tx.start(), std::logic_error);
}

TEST(TxPipeline, GapHintsOverrideRate) {
  TxFixture f;
  gen::TxConfig cfg;
  cfg.rate = RateSpec::line_rate(1.0);  // would be back-to-back
  TxPipeline tx{f.eng, f.a.tx(), f.clock, cfg};
  auto trace = make_trace(5, 10'000);  // 10 µs recorded gaps
  tx.set_source(std::make_unique<PcapReplaySource>(std::move(trace)));
  tx.start();
  f.eng.run();
  EXPECT_EQ(tx.frames_sent(), 5u);
  // 5 frames with 10 µs spacing → last departure ≈ 40 µs.
  EXPECT_NEAR(static_cast<double>(tx.last_departure()),
              4.0 * 10'000 * 1000.0, 1'000'000.0);
}

}  // namespace
}  // namespace osnt::gen
