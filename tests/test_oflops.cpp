// OFLOPS-turbo framework + modules running against the full Testbed.
#include <gtest/gtest.h>

#include "osnt/oflops/consistency.hpp"
#include "osnt/oflops/context.hpp"
#include "osnt/oflops/echo_rtt.hpp"
#include "osnt/oflops/flowmod_latency.hpp"
#include "osnt/oflops/packet_in_latency.hpp"
#include "osnt/oflops/interaction.hpp"
#include "osnt/oflops/stats_poll.hpp"

namespace osnt::oflops {
namespace {

double scalar(const Report& r, const std::string& name) {
  for (const auto& m : r.scalars)
    if (m.name == name) return m.value;
  ADD_FAILURE() << "missing scalar " << name;
  return -1;
}

const SampleSet& dist(const Report& r, const std::string& name) {
  for (const auto& [n, d] : r.distributions)
    if (n == name) return d;
  static SampleSet empty;
  ADD_FAILURE() << "missing distribution " << name;
  return empty;
}

TEST(Testbed, WiresFourCables) {
  Testbed tb;
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_TRUE(tb.osnt.port(i).cabled());
    EXPECT_TRUE(tb.sw.port(i).cabled());
  }
}

TEST(EchoRtt, MeasuresChannelPlusAgent) {
  Testbed tb;
  EchoRttConfig cfg;
  cfg.count = 20;
  EchoRttModule mod{cfg};
  const auto rep = tb.ctx.run(mod);
  EXPECT_EQ(scalar(rep, "echo_replies"), 20);
  const auto& rtt = dist(rep, "rtt_us");
  ASSERT_EQ(rtt.count(), 20u);
  // 2× channel latency (50 µs) + agent service (~20 µs) ⇒ ~120 µs.
  EXPECT_GT(rtt.quantile(0.5), 100.0);
  EXPECT_LT(rtt.quantile(0.5), 200.0);
}

TEST(PacketInLatency, StampSurvivesTruncation) {
  Testbed tb;
  PacketInLatencyConfig cfg;
  cfg.probes = 30;
  PacketInLatencyModule mod{cfg};
  const auto rep = tb.ctx.run(mod);
  EXPECT_EQ(scalar(rep, "packet_ins_received"), 30);
  const auto& lat = dist(rep, "packet_in_latency_us");
  ASSERT_EQ(lat.count(), 30u);
  // Data path + agent + channel ⇒ dominated by agent+channel (~70 µs+).
  EXPECT_GT(lat.min(), 50.0);
  EXPECT_LT(lat.quantile(0.5), 1000.0);
}

TEST(FlowModLatency, DataPlaneLagsControlPlane) {
  dut::OpenFlowSwitchConfig sw_cfg;
  sw_cfg.commit_base = 2 * kPicosPerMilli;
  Testbed tb{sw_cfg};
  FlowModLatencyConfig cfg;
  cfg.rounds = 8;
  cfg.table_size = 16;
  FlowModLatencyModule mod{cfg};
  const auto rep = tb.ctx.run(mod, 120 * kPicosPerSec);
  EXPECT_EQ(scalar(rep, "rounds_completed"), 8);
  const auto& ctrl = dist(rep, "control_plane_ms");
  const auto& data = dist(rep, "data_plane_ms");
  ASSERT_GE(ctrl.count(), 8u);
  ASSERT_EQ(data.count(), 8u);
  // The barrier acks before the hardware commit: data > control.
  EXPECT_GT(data.quantile(0.5), ctrl.quantile(0.5));
  // Data-plane install ≈ commit_base (2 ms) + probe spacing.
  EXPECT_GT(data.quantile(0.5), 2.0);
  EXPECT_LT(data.quantile(0.5), 30.0);
}

TEST(FlowModLatency, SpecFaithfulBarrierClosesGap) {
  dut::OpenFlowSwitchConfig sw_cfg;
  sw_cfg.commit_base = 2 * kPicosPerMilli;
  sw_cfg.barrier_covers_commit = true;
  Testbed tb{sw_cfg};
  FlowModLatencyConfig cfg;
  cfg.rounds = 6;
  cfg.table_size = 8;
  FlowModLatencyModule mod{cfg};
  const auto rep = tb.ctx.run(mod, 120 * kPicosPerSec);
  const auto& ctrl = dist(rep, "control_plane_ms");
  ASSERT_GE(ctrl.count(), 6u);
  // Now the barrier itself waits ≥ commit time.
  EXPECT_GT(ctrl.quantile(0.5), 2.0);
}

TEST(Consistency, UpdateWindowAndStaleness) {
  dut::OpenFlowSwitchConfig sw_cfg;
  sw_cfg.commit_base = 500 * kPicosPerMicro;  // 0.5 ms per rule
  Testbed tb{sw_cfg};
  ConsistencyConfig cfg;
  cfg.rule_count = 32;
  cfg.traffic_gbps = 1.0;
  ConsistencyModule mod{cfg};
  const auto rep = tb.ctx.run(mod, 120 * kPicosPerSec);
  EXPECT_EQ(scalar(rep, "flows_switched"), 32);
  // Rules commit serially at ~0.5 ms each ⇒ window ≈ 16 ms, and during
  // it the old path keeps forwarding: stale packets must exist.
  EXPECT_GT(scalar(rep, "stale_packets_after_burst"), 0);
  EXPECT_GT(scalar(rep, "update_window_ms"), 5.0);
  const auto& eff = dist(rep, "rule_effective_ms");
  EXPECT_EQ(eff.count(), 32u);
  EXPECT_GT(eff.max(), eff.min());
}

TEST(StatsPoll, RttScalesWithTableAndPacketInsSurvive) {
  dut::OpenFlowSwitchConfig sw_cfg;
  Testbed tb{sw_cfg};
  StatsPollConfig cfg;
  cfg.table_size = 256;
  cfg.probes_per_phase = 40;
  StatsPollModule mod{cfg};
  const auto rep = tb.ctx.run(mod, 300 * kPicosPerSec);
  EXPECT_GT(scalar(rep, "stats_polls_answered"), 0);
  // Every answered poll reported the full table.
  EXPECT_EQ(scalar(rep, "flow_entries_reported"),
            scalar(rep, "stats_polls_answered") * 256);
  const auto& rtt = dist(rep, "stats_rtt_ms");
  ASSERT_GT(rtt.count(), 0u);
  // Scan cost: agent service + 2 µs × 256 entries ≈ 0.5 ms + channel.
  EXPECT_GT(rtt.quantile(0.5), 0.5);
  const auto& base = dist(rep, "packet_in_baseline_us");
  const auto& poll = dist(rep, "packet_in_while_polling_us");
  EXPECT_EQ(base.count(), 40u);
  EXPECT_EQ(poll.count(), 40u);
  // Polling may inflate the tail but must not break the path.
  EXPECT_GE(poll.quantile(0.5), base.quantile(0.5) * 0.8);
}

TEST(Interaction, StormSlowsRuleInstallation) {
  dut::OpenFlowSwitchConfig sw_cfg;
  sw_cfg.agent_service = 200 * kPicosPerMicro;  // a slow agent CPU
  sw_cfg.agent_jitter_ns = 0;
  Testbed tb{sw_cfg};
  InteractionConfig cfg;
  cfg.rounds_per_phase = 20;
  cfg.storm_pps = 1500.0;  // 30% agent utilization at 200 µs/job
  InteractionModule mod{cfg};
  const auto rep = tb.ctx.run(mod, 300 * kPicosPerSec);

  const auto& idle = dist(rep, "barrier_rtt_idle_us");
  const auto& storm = dist(rep, "barrier_rtt_under_storm_us");
  ASSERT_EQ(idle.count(), 20u);
  ASSERT_EQ(storm.count(), 20u);
  EXPECT_GT(scalar(rep, "packet_ins_during_run"), 0);
  // Queueing behind punt jobs inflates the storm-phase tail.
  EXPECT_GT(storm.quantile(0.9), idle.quantile(0.9));
  double slowdown = 0;
  for (const auto& m : rep.scalars)
    if (m.name == "storm_slowdown_x") slowdown = m.value;
  EXPECT_GE(slowdown, 1.0);
}

TEST(Context, SnmpRoundTrip) {
  Testbed tb;
  // A trivial module that polls one OID and finishes.
  class SnmpProbe final : public MeasurementModule {
   public:
    std::string name() const override { return "snmp_probe"; }
    void start(OflopsContext& ctx) override { ctx.snmp_get("ofFlowTableSize.0"); }
    void on_snmp(OflopsContext&, const std::string& oid,
                 std::uint64_t value) override {
      oid_ = oid;
      value_ = value;
      done_ = true;
    }
    bool finished() const override { return done_; }
    Report report() const override {
      Report r;
      r.module = name();
      r.add("value", static_cast<double>(value_));
      return r;
    }
    std::string oid_;
    std::uint64_t value_ = 999;
    bool done_ = false;
  };
  SnmpProbe probe;
  const auto rep = tb.ctx.run(probe);
  EXPECT_EQ(probe.oid_, "ofFlowTableSize.0");
  EXPECT_EQ(scalar(rep, "value"), 0);  // empty table
}

TEST(Report, PrintDoesNotCrash) {
  Report r;
  r.module = "demo";
  r.add("x", 1.5, "ms");
  SampleSet s;
  s.add(1);
  s.add(2);
  r.add_distribution("d", s);
  std::FILE* sink = std::fopen("/dev/null", "w");
  ASSERT_NE(sink, nullptr);
  r.print(sink);
  std::fclose(sink);
}

}  // namespace
}  // namespace osnt::oflops
