// OpenFlow switch DUT: handshake, flow_mod pipeline, packet_in path,
// barrier semantics, commit delay, action execution.
#include <gtest/gtest.h>

#include "osnt/dut/openflow_switch.hpp"
#include "osnt/net/builder.hpp"
#include "osnt/net/parser.hpp"

namespace osnt::dut {
namespace {

using namespace osnt::openflow;

net::Packet probe(std::uint32_t dst = 0x0A000102, std::uint16_t dport = 5001,
                  std::size_t size = 128) {
  net::PacketBuilder b;
  return b.eth(net::MacAddr::from_index(1), net::MacAddr::from_index(2))
      .ipv4(net::Ipv4Addr::of(10, 0, 0, 1), net::Ipv4Addr{dst},
            net::ipproto::kUdp)
      .udp(1024, dport)
      .pad_to_frame(size)
      .build();
}

struct Bench {
  sim::Engine eng;
  ControlChannel chan{eng};
  OpenFlowSwitch sw;
  std::vector<std::unique_ptr<hw::EthPort>> hosts;
  std::vector<int> rx_count;
  std::vector<Decoded> ctrl_msgs;

  explicit Bench(OpenFlowSwitchConfig cfg = OpenFlowSwitchConfig())
      : sw(eng, chan, cfg) {
    rx_count.assign(sw.num_ports(), 0);
    for (std::size_t i = 0; i < sw.num_ports(); ++i) {
      hosts.push_back(std::make_unique<hw::EthPort>(eng));
      hw::connect(*hosts[i], sw.port(i));
      hosts[i]->rx().set_handler(
          [this, i](net::Packet, Picos, Picos) { ++rx_count[i]; });
    }
    chan.controller().set_handler(
        [this](Decoded d) { ctrl_msgs.push_back(std::move(d)); });
  }

  FlowMod rule(std::uint32_t dst, std::uint16_t out_port) {
    FlowMod fm;
    fm.match = OfMatch::exact_5tuple(0x0A000001, dst, net::ipproto::kUdp,
                                     1024, 5001);
    fm.actions = {ActionOutput{out_port}};
    return fm;
  }

  template <typename T>
  [[nodiscard]] int count_msgs() const {
    int n = 0;
    for (const auto& m : ctrl_msgs)
      if (std::holds_alternative<T>(m.msg)) ++n;
    return n;
  }
};

TEST(OpenFlowSwitch, HelloAndFeatures) {
  Bench b;
  b.chan.controller().send(Hello{});
  b.chan.controller().send(FeaturesRequest{});
  b.eng.run();
  EXPECT_EQ(b.count_msgs<Hello>(), 1);
  ASSERT_EQ(b.count_msgs<FeaturesReply>(), 1);
  for (const auto& m : b.ctrl_msgs) {
    if (const auto* fr = std::get_if<FeaturesReply>(&m.msg)) {
      EXPECT_EQ(fr->datapath_id, 0xCAFEu);
      EXPECT_EQ(fr->n_ports, 4);
    }
  }
}

TEST(OpenFlowSwitch, EchoReplyEchoesPayload) {
  Bench b;
  EchoRequest req;
  req.payload = {5, 6, 7};
  b.chan.controller().send(req);
  b.eng.run();
  ASSERT_EQ(b.count_msgs<EchoReply>(), 1);
  const auto& rep = std::get<EchoReply>(b.ctrl_msgs.back().msg);
  EXPECT_EQ(rep.payload, req.payload);
}

TEST(OpenFlowSwitch, TableMissSendsPacketIn) {
  Bench b;
  (void)b.hosts[0]->tx().transmit(probe());
  b.eng.run();
  EXPECT_EQ(b.sw.table_misses(), 1u);
  ASSERT_EQ(b.count_msgs<PacketIn>(), 1);
  const auto& pin = std::get<PacketIn>(b.ctrl_msgs.back().msg);
  EXPECT_EQ(pin.in_port, 1);  // OF ports are 1-based
  EXPECT_EQ(pin.reason, PacketInReason::kNoMatch);
  EXPECT_LE(pin.data.size(), 128u);  // truncated
  EXPECT_EQ(pin.total_len, 124u);
}

TEST(OpenFlowSwitch, InstalledRuleForwards) {
  Bench b;
  b.chan.controller().send(b.rule(0x0A000102, 3));  // → switch port 3
  b.chan.controller().send(BarrierRequest{});
  b.eng.run();  // wait for install + commit
  (void)b.hosts[0]->tx().transmit(probe());
  b.eng.run();
  EXPECT_EQ(b.rx_count[2], 1);  // OF port 3 = index 2
  EXPECT_EQ(b.sw.frames_forwarded(), 1u);
  EXPECT_EQ(b.sw.table_misses(), 0u);
}

TEST(OpenFlowSwitch, CommitDelayWindow) {
  OpenFlowSwitchConfig cfg;
  cfg.commit_base = 5 * kPicosPerMilli;
  Bench b{cfg};
  b.chan.controller().send(b.rule(0x0A000102, 3));
  // Immediately after the flow_mod hits the agent, the rule is NOT yet in
  // hardware: probes still miss.
  b.eng.run_until(kPicosPerMilli);
  (void)b.hosts[0]->tx().transmit(probe());
  b.eng.run_until(2 * kPicosPerMilli);
  EXPECT_EQ(b.sw.table_misses(), 1u);
  EXPECT_EQ(b.sw.flow_mods_committed(), 0u);
  // After the commit completes the same probe forwards.
  b.eng.run_until(10 * kPicosPerMilli);
  EXPECT_EQ(b.sw.flow_mods_committed(), 1u);
  (void)b.hosts[0]->tx().transmit(probe());
  b.eng.run();
  EXPECT_EQ(b.rx_count[2], 1);
}

TEST(OpenFlowSwitch, BarrierBeforeCommitByDefault) {
  OpenFlowSwitchConfig cfg;
  cfg.commit_base = 20 * kPicosPerMilli;
  Bench b{cfg};
  b.chan.controller().send(b.rule(0x0A000102, 3));
  b.chan.controller().send(BarrierRequest{});
  Picos barrier_at = -1;
  b.chan.controller().set_handler([&](Decoded d) {
    if (std::holds_alternative<BarrierReply>(d.msg)) barrier_at = b.eng.now();
  });
  b.eng.run();
  ASSERT_GT(barrier_at, 0);
  // Barrier replied before the 20 ms hardware commit — the classic gap.
  EXPECT_LT(barrier_at, 20 * kPicosPerMilli);
  EXPECT_EQ(b.sw.flow_mods_committed(), 1u);
}

TEST(OpenFlowSwitch, BarrierCoversCommitWhenConfigured) {
  OpenFlowSwitchConfig cfg;
  cfg.commit_base = 20 * kPicosPerMilli;
  cfg.barrier_covers_commit = true;
  Bench b{cfg};
  b.chan.controller().send(b.rule(0x0A000102, 3));
  b.chan.controller().send(BarrierRequest{});
  Picos barrier_at = -1;
  b.chan.controller().set_handler([&](Decoded d) {
    if (std::holds_alternative<BarrierReply>(d.msg)) barrier_at = b.eng.now();
  });
  b.eng.run();
  EXPECT_GE(barrier_at, 20 * kPicosPerMilli);
}

TEST(OpenFlowSwitch, PacketInRateLimited) {
  OpenFlowSwitchConfig cfg;
  cfg.packet_in_limit_pps = 100.0;
  Bench b{cfg};
  for (int i = 0; i < 500; ++i) (void)b.hosts[0]->tx().transmit(probe());
  b.eng.run();
  EXPECT_GT(b.sw.packet_ins_rate_limited(), 0u);
  EXPECT_LT(b.sw.packet_ins_sent(), 500u);
}

TEST(OpenFlowSwitch, PacketOutInjects) {
  Bench b;
  PacketOut po;
  po.actions = {ActionOutput{2}};
  po.data = probe().data;
  b.chan.controller().send(po);
  b.eng.run();
  EXPECT_EQ(b.rx_count[1], 1);  // OF port 2 = index 1
}

TEST(OpenFlowSwitch, FloodAction) {
  Bench b;
  FlowMod fm = b.rule(0x0A000102, 0);
  fm.actions = {ActionOutput{ofpp::kFlood}};
  b.chan.controller().send(fm);
  b.eng.run();
  (void)b.hosts[0]->tx().transmit(probe());
  b.eng.run();
  EXPECT_EQ(b.rx_count[0], 0);
  EXPECT_EQ(b.rx_count[1] + b.rx_count[2] + b.rx_count[3], 3);
}

TEST(OpenFlowSwitch, VlanRewriteActions) {
  Bench b;
  FlowMod fm = b.rule(0x0A000102, 0);
  fm.actions = {ActionSetVlanVid{77}, ActionOutput{3}};
  b.chan.controller().send(fm);
  b.eng.run();
  std::optional<net::ParsedPacket> got;
  b.hosts[2]->rx().set_handler([&](net::Packet p, Picos, Picos) {
    got = net::parse_packet(p.bytes());
  });
  (void)b.hosts[0]->tx().transmit(probe());
  b.eng.run();
  ASSERT_TRUE(got && got->vlan);
  EXPECT_EQ(got->vlan->vid, 77);
}

TEST(OpenFlowSwitch, EmptyActionsDrop) {
  Bench b;
  FlowMod fm = b.rule(0x0A000102, 0);
  fm.actions.clear();
  b.chan.controller().send(fm);
  b.eng.run();
  (void)b.hosts[0]->tx().transmit(probe());
  b.eng.run();
  EXPECT_EQ(b.rx_count[0] + b.rx_count[1] + b.rx_count[2] + b.rx_count[3], 0);
  EXPECT_EQ(b.sw.table_misses(), 0u);  // matched, then dropped
  EXPECT_EQ(b.count_msgs<PacketIn>(), 0);
}

TEST(OpenFlowSwitch, FlowStatsReplyReflectsCounters) {
  Bench b;
  b.chan.controller().send(b.rule(0x0A000102, 3));
  b.eng.run();
  (void)b.hosts[0]->tx().transmit(probe());
  (void)b.hosts[0]->tx().transmit(probe());
  b.eng.run();
  FlowStatsRequest req;
  req.match = OfMatch::any();
  b.chan.controller().send(req);
  b.eng.run();
  ASSERT_EQ(b.count_msgs<FlowStatsReply>(), 1);
  const auto& rep = std::get<FlowStatsReply>(b.ctrl_msgs.back().msg);
  ASSERT_EQ(rep.flows.size(), 1u);
  EXPECT_EQ(rep.flows[0].packet_count, 2u);
}

TEST(OpenFlowSwitch, TableFullSendsError) {
  OpenFlowSwitchConfig cfg;
  cfg.table.max_entries = 2;
  Bench b{cfg};
  std::uint32_t last_fm_xid = 0;
  for (std::uint32_t i = 0; i < 3; ++i)
    last_fm_xid = b.chan.controller().send(
        b.rule(0x0A000100 + i, 3));
  b.eng.run();
  ASSERT_EQ(b.count_msgs<ErrorMsg>(), 1);
  const auto& err = std::get<ErrorMsg>(b.ctrl_msgs.back().msg);
  EXPECT_EQ(err.type, 3);  // OFPET_FLOW_MOD_FAILED
  EXPECT_EQ(err.code, 0);  // ALL_TABLES_FULL
  EXPECT_EQ(b.ctrl_msgs.back().xid, last_fm_xid);
  // The offending flow_mod rides in the error body and re-decodes.
  const auto inner = decode(ByteSpan{err.data.data(), err.data.size()});
  ASSERT_TRUE(inner);
  EXPECT_TRUE(std::holds_alternative<FlowMod>(inner->msg));
  EXPECT_EQ(b.sw.table().size(), 2u);
}

TEST(OpenFlowSwitch, IdleTimeoutEmitsFlowRemoved) {
  Bench b;
  FlowMod fm = b.rule(0x0A000102, 3);
  fm.idle_timeout = 1;  // second
  fm.flags = off::kSendFlowRem;
  b.chan.controller().send(fm);
  // run_until (not run): the armed expiry sweep would otherwise execute
  // all the way through the eviction before we can observe the rule.
  b.eng.run_until(100 * kPicosPerMilli);
  EXPECT_EQ(b.sw.table().size(), 1u);
  // Use the rule once, then go quiet; the sweep evicts it.
  (void)b.hosts[0]->tx().transmit(probe());
  b.eng.run_until(b.eng.now() + 5 * kPicosPerSec);
  b.eng.run();
  EXPECT_EQ(b.sw.table().size(), 0u);
  ASSERT_EQ(b.count_msgs<FlowRemoved>(), 1);
  for (const auto& m : b.ctrl_msgs) {
    if (const auto* fr = std::get_if<FlowRemoved>(&m.msg)) {
      EXPECT_EQ(fr->reason, FlowRemovedReason::kIdleTimeout);
      EXPECT_EQ(fr->packet_count, 1u);
      EXPECT_GE(fr->duration_sec, 1u);
    }
  }
}

TEST(OpenFlowSwitch, HardTimeoutEvictsEvenWhenUsed) {
  Bench b;
  FlowMod fm = b.rule(0x0A000102, 3);
  fm.hard_timeout = 1;
  fm.flags = off::kSendFlowRem;
  b.chan.controller().send(fm);
  b.eng.run();
  // Keep the flow busy across the timeout.
  for (int i = 0; i < 20; ++i) {
    (void)b.hosts[0]->tx().transmit(probe());
    b.eng.run_until(b.eng.now() + 100 * kPicosPerMilli);
  }
  b.eng.run();
  EXPECT_EQ(b.sw.table().size(), 0u);
  ASSERT_GE(b.count_msgs<FlowRemoved>(), 1);
}

TEST(OpenFlowSwitch, NoTimeoutsMeansQueueDrains) {
  // A rule without timeouts must not leave a perpetual sweep armed.
  Bench b;
  b.chan.controller().send(b.rule(0x0A000102, 3));
  b.eng.run();  // terminates ⇔ no self-rescheduling events
  EXPECT_TRUE(b.eng.empty());
  EXPECT_EQ(b.sw.table().size(), 1u);
}

TEST(OpenFlowSwitch, PortStatsReflectTraffic) {
  Bench b;
  b.chan.controller().send(b.rule(0x0A000102, 3));
  b.eng.run();
  (void)b.hosts[0]->tx().transmit(probe());
  (void)b.hosts[0]->tx().transmit(probe());
  b.eng.run();
  b.chan.controller().send(PortStatsRequest{});  // all ports
  b.eng.run();
  ASSERT_EQ(b.count_msgs<PortStatsReply>(), 1);
  const auto& rep = std::get<PortStatsReply>(b.ctrl_msgs.back().msg);
  ASSERT_EQ(rep.ports.size(), 4u);
  EXPECT_EQ(rep.ports[0].port_no, 1);
  EXPECT_EQ(rep.ports[0].rx_packets, 2u);  // ingress
  EXPECT_EQ(rep.ports[2].tx_packets, 2u);  // egress (OF port 3)
}

TEST(OpenFlowSwitch, PortStatsSinglePortFilter) {
  Bench b;
  PortStatsRequest req;
  req.port_no = 2;
  b.chan.controller().send(req);
  b.eng.run();
  ASSERT_EQ(b.count_msgs<PortStatsReply>(), 1);
  const auto& rep = std::get<PortStatsReply>(b.ctrl_msgs.back().msg);
  ASSERT_EQ(rep.ports.size(), 1u);
  EXPECT_EQ(rep.ports[0].port_no, 2);
}

TEST(OpenFlowSwitch, AggregateStatsSumTable) {
  Bench b;
  b.chan.controller().send(b.rule(0x0A000102, 3));
  b.chan.controller().send(b.rule(0x0A000103, 3));
  b.eng.run();
  (void)b.hosts[0]->tx().transmit(probe(0x0A000102));
  (void)b.hosts[0]->tx().transmit(probe(0x0A000102));
  (void)b.hosts[0]->tx().transmit(probe(0x0A000103));
  b.eng.run();
  AggregateStatsRequest req;
  req.match = OfMatch::any();
  b.chan.controller().send(req);
  b.eng.run();
  ASSERT_EQ(b.count_msgs<AggregateStatsReply>(), 1);
  const auto& rep = std::get<AggregateStatsReply>(b.ctrl_msgs.back().msg);
  EXPECT_EQ(rep.flow_count, 2u);
  EXPECT_EQ(rep.packet_count, 3u);
  EXPECT_EQ(rep.byte_count, 3u * 128u);
}

TEST(OpenFlowSwitch, ActionModifyLatencyApplied) {
  OpenFlowSwitchConfig cfg;
  cfg.action_modify_latency = 10 * kPicosPerMicro;
  cfg.latency_jitter_ns = 0;
  Bench b{cfg};
  FlowMod plain = b.rule(0x0A000102, 3);
  FlowMod rewrite = b.rule(0x0A000103, 3);
  rewrite.actions = {ActionSetVlanVid{7}, ActionOutput{3}};
  b.chan.controller().send(plain);
  b.chan.controller().send(rewrite);
  b.eng.run();

  Picos t_plain = -1, t_rewrite = -1;
  b.hosts[2]->rx().set_handler([&](net::Packet p, Picos first, Picos) {
    const auto parsed = net::parse_packet(p.bytes());
    if (parsed && parsed->vlan) t_rewrite = first;
    else t_plain = first;
  });
  const Picos t0 = b.eng.now();
  (void)b.hosts[0]->tx().transmit(probe(0x0A000102));
  b.eng.run();
  const Picos plain_lat = t_plain - t0;
  const Picos t1 = b.eng.now();
  (void)b.hosts[0]->tx().transmit(probe(0x0A000103));
  b.eng.run();
  const Picos rewrite_lat = t_rewrite - t1;
  // VLAN-tagged frame is 4 B longer (longer serialization), plus the
  // 10 µs modify cost dominates.
  EXPECT_NEAR(static_cast<double>(rewrite_lat - plain_lat),
              10e6 + 4 * 800.0, 5'000.0);
}

TEST(OpenFlowSwitch, FlowRemovedOnDeleteWhenFlagged) {
  Bench b;
  FlowMod fm = b.rule(0x0A000102, 3);
  fm.flags = off::kSendFlowRem;
  fm.cookie = 0xBEE;
  b.chan.controller().send(fm);
  b.eng.run();
  FlowMod del;
  del.match = OfMatch::any();
  del.command = FlowModCommand::kDelete;
  b.chan.controller().send(del);
  b.eng.run();
  ASSERT_EQ(b.count_msgs<FlowRemoved>(), 1);
  for (const auto& m : b.ctrl_msgs) {
    if (const auto* fr = std::get_if<FlowRemoved>(&m.msg)) {
      EXPECT_EQ(fr->cookie, 0xBEEu);
    }
  }
}

}  // namespace
}  // namespace osnt::dut
