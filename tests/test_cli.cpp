// CLI flag parser.
#include <gtest/gtest.h>

#include "osnt/common/cli.hpp"

namespace osnt {
namespace {

TEST(Cli, ParsesAllTypes) {
  std::string s = "default";
  double d = 1.5;
  std::int64_t i = 7;
  bool b = false;
  CliParser cli{"test"};
  cli.add_flag("str", &s, "a string");
  cli.add_flag("num", &d, "a double");
  cli.add_flag("count", &i, "an int");
  cli.add_flag("verbose", &b, "a bool");
  const char* argv[] = {"prog", "--str", "hello", "--num=2.25",
                        "--count", "42", "--verbose"};
  ASSERT_TRUE(cli.parse(7, argv));
  EXPECT_EQ(s, "hello");
  EXPECT_DOUBLE_EQ(d, 2.25);
  EXPECT_EQ(i, 42);
  EXPECT_TRUE(b);
}

TEST(Cli, DefaultsSurviveWhenAbsent) {
  double d = 3.0;
  CliParser cli{"test"};
  cli.add_flag("num", &d, "a double");
  const char* argv[] = {"prog"};
  ASSERT_TRUE(cli.parse(1, argv));
  EXPECT_DOUBLE_EQ(d, 3.0);
}

TEST(Cli, UnknownFlagFails) {
  CliParser cli{"test"};
  const char* argv[] = {"prog", "--nope", "1"};
  EXPECT_FALSE(cli.parse(3, argv));
  EXPECT_FALSE(cli.help_requested());
}

TEST(Cli, UnknownFlagSuggestsNearest) {
  double rate = 0;
  std::int64_t frames = 0;
  CliParser cli{"test"};
  cli.add_flag("rate-gbps", &rate, "rate");
  cli.add_flag("frame-size", &frames, "size");
  // One edit away → suggested.
  EXPECT_EQ(cli.nearest_flag("rate-gbp"), "rate-gbps");
  EXPECT_EQ(cli.nearest_flag("frame-sise"), "frame-size");
  // --help is always a candidate.
  EXPECT_EQ(cli.nearest_flag("helpp"), "help");
  // Gibberish is too far from anything: no suggestion.
  EXPECT_EQ(cli.nearest_flag("zzzzzzzz"), "");
  // A typo'd flag is still a hard parse error.
  const char* argv[] = {"prog", "--rate-gbp", "4"};
  EXPECT_FALSE(cli.parse(3, argv));
}

TEST(Cli, MissingValueFails) {
  double d = 0;
  CliParser cli{"test"};
  cli.add_flag("num", &d, "a double");
  const char* argv[] = {"prog", "--num"};
  EXPECT_FALSE(cli.parse(2, argv));
}

TEST(Cli, BadNumberFails) {
  double d = 0;
  std::int64_t i = 0;
  CliParser cli{"test"};
  cli.add_flag("num", &d, "a double");
  cli.add_flag("count", &i, "an int");
  const char* bad_d[] = {"prog", "--num", "abc"};
  EXPECT_FALSE(cli.parse(3, bad_d));
  CliParser cli2{"test"};
  cli2.add_flag("count", &i, "an int");
  const char* bad_i[] = {"prog", "--count", "12x"};
  EXPECT_FALSE(cli2.parse(3, bad_i));
}

TEST(Cli, BoolValueForms) {
  bool b = false;
  CliParser cli{"test"};
  cli.add_flag("flag", &b, "a bool");
  const char* on[] = {"prog", "--flag=yes"};
  ASSERT_TRUE(cli.parse(2, on));
  EXPECT_TRUE(b);
  CliParser cli2{"test"};
  cli2.add_flag("flag", &b, "a bool");
  const char* off[] = {"prog", "--flag=0"};
  ASSERT_TRUE(cli2.parse(2, off));
  EXPECT_FALSE(b);
  CliParser cli3{"test"};
  cli3.add_flag("flag", &b, "a bool");
  const char* junk[] = {"prog", "--flag=maybe"};
  EXPECT_FALSE(cli3.parse(2, junk));
}

TEST(Cli, PositionalArgumentsCollected) {
  CliParser cli{"test"};
  double d = 0;
  cli.add_flag("num", &d, "a double");
  const char* argv[] = {"prog", "input.pcap", "--num", "1", "out.pcap"};
  ASSERT_TRUE(cli.parse(5, argv));
  ASSERT_EQ(cli.positional().size(), 2u);
  EXPECT_EQ(cli.positional()[0], "input.pcap");
  EXPECT_EQ(cli.positional()[1], "out.pcap");
}

TEST(Cli, HelpShortCircuits) {
  CliParser cli{"test tool"};
  const char* argv[] = {"prog", "--help"};
  EXPECT_FALSE(cli.parse(2, argv));
  EXPECT_TRUE(cli.help_requested());
}

TEST(Cli, UsageListsFlagsAndDefaults) {
  double d = 2.5;
  CliParser cli{"my tool"};
  cli.add_flag("rate", &d, "the rate");
  const std::string u = cli.usage();
  EXPECT_NE(u.find("my tool"), std::string::npos);
  EXPECT_NE(u.find("--rate"), std::string::npos);
  EXPECT_NE(u.find("2.5"), std::string::npos);
  EXPECT_NE(u.find("--help"), std::string::npos);
}

}  // namespace
}  // namespace osnt
