// Rate-limit resilience (DESIGN.md §15): the RateLimitDetector's three
// mechanisms against synthesized sample streams (plateau + corroboration
// detection, median-below-peak verdicts on bimodal policer clouds,
// probe-epoch release), the closed-loop carrier-policer scenario where
// the adapted BbrLite must beat the detector-off baseline on both
// goodput and RTT inflation, block-targeted rate_limit / queue_cap
// faults retiming a live bucket, and the determinism contract: a
// fault-armed policer topology is byte-identical under kSimOnly
// telemetry at any --jobs value.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "osnt/core/runner.hpp"
#include "osnt/fault/injector.hpp"
#include "osnt/fault/plan.hpp"
#include "osnt/graph/blocks.hpp"
#include "osnt/graph/graph.hpp"
#include "osnt/graph/topology.hpp"
#include "osnt/sim/engine.hpp"
#include "osnt/tcp/rate_limit_detector.hpp"
#include "osnt/telemetry/registry.hpp"

namespace osnt {
namespace {

using graph::TopologyFile;
using tcp::RateLimitDetector;

void expect_contains(const std::string& msg, const std::string& needle) {
  EXPECT_NE(msg.find(needle), std::string::npos)
      << "expected \"" << needle << "\" in: " << msg;
}

// ------------------------------------------------- detector unit tests

/// Synthetic ACK clock: one tick = one ACK every 50 us, with the flow's
/// cumulative `delivered` counter advancing at `goodput_bps` and the
/// instantaneous delivery-rate sample pinned at `sample_bps`. This is
/// exactly the estimator state Flow::on_ack feeds the detector, minus
/// the dataplane.
struct SyntheticAckClock {
  RateLimitDetector det;
  Picos now = 0;
  std::uint64_t delivered = 0;
  int verdict_changes = 0;

  static constexpr Picos kStep = 50 * kPicosPerMicro;

  void tick(double sample_bps, double goodput_bps, Picos rtt,
            bool loss = false) {
    now += kStep;
    delivered += static_cast<std::uint64_t>(
        goodput_bps * static_cast<double>(kStep) /
        (8.0 * static_cast<double>(kPicosPerSec)));
    if (loss) det.on_loss();
    if (det.on_ack(now, sample_bps, rtt, delivered)) ++verdict_changes;
  }

  /// `span` of sim time at a steady operating point.
  void run(Picos span, double sample_bps, double goodput_bps, Picos rtt,
           bool loss_each_window = false) {
    const Picos window = 2 * kPicosPerMilli;  // cfg min_window default
    for (Picos t = 0; t < span; t += kStep) {
      const bool loss = loss_each_window && (t % window) < kStep;
      tick(sample_bps, goodput_bps, rtt, loss);
    }
  }
};

constexpr double kTokenRate = 2.5e9;
constexpr Picos kRttFloor = 100 * kPicosPerMicro;

TEST(RateLimit, ShaperPlateauWithInflatedRttDetects) {
  SyntheticAckClock clk;
  // One sample at the unqueued floor pins min_rtt; then the shaper's
  // standing queue doubles the RTT while goodput plateaus at the token
  // rate. Four 2 ms windows in band + inflation = a verdict.
  clk.tick(kTokenRate, kTokenRate, kRttFloor);
  clk.run(12 * kPicosPerMilli, kTokenRate, kTokenRate, 2 * kRttFloor);

  EXPECT_TRUE(clk.det.detected());
  EXPECT_EQ(clk.det.detections(), 1u);
  EXPECT_EQ(clk.det.releases(), 0u);
  // Log-histogram bins are ~1.2x wide; the verdict must land within the
  // controller's tolerance band of the true token rate.
  EXPECT_GT(clk.det.verdict_rate_bps(), 0.75 * kTokenRate);
  EXPECT_LT(clk.det.verdict_rate_bps(), 1.25 * kTokenRate);
  EXPECT_GT(clk.det.detect_time(), 0);
  EXPECT_LE(clk.det.detect_time(), 10 * kPicosPerMilli);
  EXPECT_GE(clk.verdict_changes, 1);
}

TEST(RateLimit, AppLimitedPlateauStaysQuiet) {
  SyntheticAckClock clk;
  // Flat goodput alone is what an application-limited flow looks like:
  // RTT at the floor, zero losses. Without corroboration the plateau
  // must never convert into a verdict.
  clk.run(20 * kPicosPerMilli, kTokenRate, kTokenRate, kRttFloor);

  EXPECT_FALSE(clk.det.detected());
  EXPECT_EQ(clk.det.detections(), 0u);
  EXPECT_DOUBLE_EQ(clk.det.detected_rate_bps(), 0.0);
}

TEST(RateLimit, PolicerLossesCorroborateWithoutRttInflation) {
  SyntheticAckClock clk;
  // Drop-mode policer signature: RTT stays at the floor (excess is
  // discarded, not queued) and losses land inside the plateau.
  clk.run(12 * kPicosPerMilli, kTokenRate, kTokenRate, kRttFloor,
          /*loss_each_window=*/true);

  EXPECT_TRUE(clk.det.detected());
  EXPECT_GT(clk.det.verdict_rate_bps(), 0.75 * kTokenRate);
  EXPECT_LT(clk.det.verdict_rate_bps(), 1.25 * kTokenRate);
}

TEST(RateLimit, BimodalPolicerCloudResolvesToTokenRate) {
  SyntheticAckClock clk;
  clk.tick(kTokenRate, kTokenRate, kRttFloor);
  // Against a drop-mode policer the clean samples split: the ACK clock
  // through the draining bucket sits at the token rate, but post-stall
  // bursts through the refilled reserve ACK at the line rate (5 Gb/s),
  // and go-back-N recovery drags the achieved goodput far below both.
  // The median-below-peak verdict must recover the token rate — not the
  // line-rate pileup, and not the recovery-depressed goodput.
  const double line_rate = 5.0e9;
  const Picos window = 2 * kPicosPerMilli;
  int i = 0;
  for (Picos t = 0; t < 12 * kPicosPerMilli; t += SyntheticAckClock::kStep) {
    const double sample = (i++ % 10 < 7) ? kTokenRate : line_rate;
    clk.tick(sample, /*goodput=*/1.2e9, kRttFloor,
             /*loss=*/(t % window) < SyntheticAckClock::kStep);
  }

  ASSERT_TRUE(clk.det.detected());
  EXPECT_GT(clk.det.verdict_rate_bps(), 0.75 * kTokenRate);
  EXPECT_LT(clk.det.verdict_rate_bps(), 1.25 * kTokenRate)
      << "verdict picked the line-rate burst pileup";
}

TEST(RateLimit, DownwardRetimeReFires) {
  SyntheticAckClock clk;
  clk.tick(kTokenRate, kTokenRate, kRttFloor);
  clk.run(10 * kPicosPerMilli, kTokenRate, kTokenRate, 2 * kRttFloor);
  ASSERT_TRUE(clk.det.detected());
  const double first = clk.det.verdict_rate_bps();

  // Carrier squeezes the bucket to 1 Gb/s mid-flow. The first
  // out-of-band window restarts the plateau; four windows later the
  // detector must re-fire with the materially lower verdict.
  clk.run(14 * kPicosPerMilli, 1.0e9, 1.0e9, 2 * kRttFloor);
  EXPECT_EQ(clk.det.detections(), 2u);
  EXPECT_LT(clk.det.verdict_rate_bps(), 0.75 * first);
  EXPECT_GT(clk.det.verdict_rate_bps(), 0.75e9);
  EXPECT_LT(clk.det.verdict_rate_bps(), 1.25e9);
}

TEST(RateLimit, StandingVerdictDoesNotReFireInBand) {
  SyntheticAckClock clk;
  clk.tick(kTokenRate, kTokenRate, kRttFloor);
  // Long steady plateau: exactly one detection, no churn — re-arming on
  // every window would thrash the controller's model.
  clk.run(24 * kPicosPerMilli, kTokenRate, kTokenRate, 2 * kRttFloor);
  EXPECT_EQ(clk.det.detections(), 1u);
}

/// Drive a detected clock up to the start of its first probe epoch.
void run_until_probing(SyntheticAckClock& clk) {
  clk.tick(kTokenRate, kTokenRate, kRttFloor);
  for (int i = 0; i < 4000 && !clk.det.probing(); ++i) {
    clk.tick(kTokenRate, kTokenRate, 2 * kRttFloor);
  }
  ASSERT_TRUE(clk.det.probing()) << "no probe epoch within 200 ms";
  ASSERT_TRUE(clk.det.detected());
}

TEST(RateLimit, ProbeEpochExportsRaisedRate) {
  SyntheticAckClock clk;
  run_until_probing(clk);
  // During the epoch the exported rate is probe_gain x the verdict; the
  // standing verdict itself is untouched.
  const tcp::RateLimitDetectorConfig cfg{};
  EXPECT_DOUBLE_EQ(clk.det.detected_rate_bps(),
                   cfg.probe_gain * clk.det.verdict_rate_bps());
}

TEST(RateLimit, ProbeEpochReleasesWhenLimiterIsLifted) {
  SyntheticAckClock clk;
  run_until_probing(clk);
  // The limiter is gone: the flow follows the raised export and the
  // epoch window's goodput doubles. Closing the epoch must release the
  // verdict and restart learning.
  for (int i = 0; i < 200 && clk.det.probing(); ++i) {
    clk.tick(2 * kTokenRate, 2 * kTokenRate, kRttFloor);
  }
  EXPECT_FALSE(clk.det.probing());
  EXPECT_FALSE(clk.det.detected());
  EXPECT_EQ(clk.det.releases(), 1u);
  EXPECT_DOUBLE_EQ(clk.det.detected_rate_bps(), 0.0);
}

TEST(RateLimit, ProbeEpochReclampsWhenLimiterHolds) {
  SyntheticAckClock clk;
  run_until_probing(clk);
  const double verdict = clk.det.verdict_rate_bps();
  // The limiter stands: epoch goodput stays pinned at the token rate
  // (the bucket's reserve cannot fake a whole window). The epoch must
  // close back onto the same verdict with zero releases.
  for (int i = 0; i < 200 && clk.det.probing(); ++i) {
    clk.tick(kTokenRate, kTokenRate, 2 * kRttFloor);
  }
  EXPECT_FALSE(clk.det.probing());
  EXPECT_TRUE(clk.det.detected());
  EXPECT_EQ(clk.det.releases(), 0u);
  EXPECT_DOUBLE_EQ(clk.det.detected_rate_bps(), verdict);
}

// --------------------------------------------- closed-loop scenarios

// The carrier-policer scenario (examples/topologies/carrier_policer.json
// at test length): a 2.5 Gb/s drop-mode bucket halfway down a 5 Gb/s
// path. Without detection BbrLite's bandwidth model is poisoned by
// recovery-aliased line-rate samples and goodput collapses well below
// the token rate under RTO storms.
constexpr const char* kCarrierPolicer = R"({
  "name": "carrier_policer_test",
  "seed": 3,
  "duration_ms": 40,
  "blocks": [
    {"name": "access", "type": "delay_ber", "delay_us": 20},
    {"name": "policer", "type": "token_bucket",
     "rate_gbps": 2.5, "burst_bytes": 30000, "shape": false},
    {"name": "egress_q", "type": "fifo_queue",
     "rate_gbps": 10.0, "queue_frames": 256},
    {"name": "tap", "type": "monitor", "rtt_probe": true},
    {"name": "ackpath", "type": "delay_ber", "delay_us": 20}
  ],
  "edges": [
    {"from": "access:0", "to": "policer:0"},
    {"from": "policer:0", "to": "egress_q:0"},
    {"from": "egress_q:0", "to": "tap:0"}
  ],
  "workload": {
    "kind": "tcp", "flows": 1, "cc": "bbr", "mss": 1448,
    "bottleneck_gbps": 5.0, "queue_segments": 256,
    "rate_limit_detector": true,
    "ingress": "access:0", "egress": "tap:0",
    "ack_ingress": "ackpath:0", "ack_egress": "ackpath:0"
  }
})";

std::string with_detector_off(std::string topo) {
  const std::string on = "\"rate_limit_detector\": true";
  const auto pos = topo.find(on);
  EXPECT_NE(pos, std::string::npos);
  topo.replace(pos, on.size(), "\"rate_limit_detector\": false");
  return topo;
}

std::string with_shaper(std::string topo) {
  const std::string drop = "\"shape\": false";
  const auto pos = topo.find(drop);
  EXPECT_NE(pos, std::string::npos);
  topo.replace(pos, drop.size(), "\"shape\": true");
  return topo;
}

TEST(RateLimit, ClosedLoopAdaptationBeatsBaselineThroughPolicer) {
  const TopologyFile on = TopologyFile::from_json(kCarrierPolicer);
  const TopologyFile off =
      TopologyFile::from_json(with_detector_off(kCarrierPolicer));
  const auto r_on = graph::run_topology_trial(on, on.seed);
  const auto r_off = graph::run_topology_trial(off, off.seed);

  // Detector off: no detections, model poisoning collapses goodput.
  EXPECT_EQ(r_off.tcp.rld_detections, 0u);
  ASSERT_GT(r_off.tcp.goodput_bps, 0.0);

  // Detector on: a verdict at the token rate, with a detection latency.
  EXPECT_GE(r_on.tcp.rld_detections, 1u);
  EXPECT_GT(r_on.tcp.rld_rate_bps, 0.75 * kTokenRate);
  EXPECT_LT(r_on.tcp.rld_rate_bps, 1.25 * kTokenRate);
  EXPECT_GT(r_on.tcp.rld_detect_time, 0);

  // The acceptance bar (BENCH_tcp rate_limit_resilience gate): at least
  // 1.5x the baseline's goodput at no more than 0.5x its p99 RTT
  // inflation over the observed floor.
  EXPECT_GE(r_on.tcp.goodput_bps, 1.5 * r_off.tcp.goodput_bps);
  ASSERT_GT(r_on.tcp.rtt_min_ns, 0.0);
  ASSERT_GT(r_off.tcp.rtt_min_ns, 0.0);
  const double infl_on = r_on.tcp.rtt_p99_ns / r_on.tcp.rtt_min_ns;
  const double infl_off = r_off.tcp.rtt_p99_ns / r_off.tcp.rtt_min_ns;
  EXPECT_LE(infl_on, 0.5 * infl_off);
}

TEST(RateLimit, ShaperModeInflatesInPlaneRtt) {
  // shape=true turns the same bucket into a delay box: the excess
  // queues behind the token deficit instead of dropping. The monitor
  // tap's in-plane histogram must show the standing queue, which the
  // drop-mode run never builds.
  const TopologyFile shaped =
      TopologyFile::from_json(with_shaper(with_detector_off(kCarrierPolicer)));
  const TopologyFile dropped =
      TopologyFile::from_json(with_detector_off(kCarrierPolicer));
  const auto r_shaped = graph::run_topology_trial(shaped, shaped.seed);
  const auto r_dropped = graph::run_topology_trial(dropped, dropped.seed);

  const graph::BlockCounters* tap_s = nullptr;
  const graph::BlockCounters* tap_d = nullptr;
  for (const auto& b : r_shaped.blocks) {
    if (b.name == "tap") tap_s = &b;
  }
  for (const auto& b : r_dropped.blocks) {
    if (b.name == "tap") tap_d = &b;
  }
  ASSERT_NE(tap_s, nullptr);
  ASSERT_NE(tap_d, nullptr);
  ASSERT_GT(tap_s->rtt_samples, 0u);
  ASSERT_GT(tap_d->rtt_samples, 0u);
  // Drop mode never queues at the bucket — every frame that survives
  // the policer crossed an empty path, so the in-plane histogram is
  // flat at the propagation floor.
  EXPECT_LT(tap_d->rtt_p99_ns, 1.05 * tap_d->rtt_p50_ns);
  // Shape mode puts the backlog *in* the histogram: the tail rides the
  // shaper queue's excursions far above both its own median and drop
  // mode's floor. Queueing delay, not loss, is the shaper's
  // backpressure.
  EXPECT_GT(tap_s->rtt_p50_ns, tap_d->rtt_p50_ns);
  EXPECT_GT(tap_s->rtt_p99_ns, 2.0 * tap_s->rtt_p50_ns);
  EXPECT_GT(tap_s->rtt_p99_ns, 5.0 * tap_d->rtt_p99_ns);
  // And the flow's own probe sees the same inflation signature the
  // detector keys on.
  ASSERT_GT(r_shaped.tcp.rtt_min_ns, 0.0);
  EXPECT_GT(r_shaped.tcp.rtt_p99_ns, 1.5 * r_shaped.tcp.rtt_min_ns);
  // A shaper never beats its token rate: goodput pins at (or under) it.
  EXPECT_LT(r_shaped.tcp.goodput_bps, 1.1 * kTokenRate);
  EXPECT_GT(r_shaped.tcp.goodput_bps, 0.5 * kTokenRate);
}

TEST(RateLimit, ShaperPlateauIsDetectedInClosedLoop) {
  // The shaper is the detector's easy case: clean unimodal samples at
  // the token rate plus RTT corroboration.
  const TopologyFile shaped =
      TopologyFile::from_json(with_shaper(kCarrierPolicer));
  const auto r = graph::run_topology_trial(shaped, shaped.seed);
  EXPECT_GE(r.tcp.rld_detections, 1u);
  EXPECT_GT(r.tcp.rld_rate_bps, 0.75 * kTokenRate);
  EXPECT_LT(r.tcp.rld_rate_bps, 1.25 * kTokenRate);
}

// ------------------------------------------- block-targeted faults

TEST(RateLimitFault, UnknownTargetIsHardErrorWithSuggestion) {
  sim::Engine eng;
  graph::Graph g(eng);
  g.emplace<graph::TokenBucketBlock>(eng, "policer",
                                     graph::TokenBucketConfig{});
  fault::FaultPlan plan;
  plan.rate_limit(kPicosPerMilli, kPicosPerMilli, "policr", 1.0);
  fault::Injector inj(eng, plan);
  inj.attach_graph(g);
  try {
    inj.arm();
    FAIL() << "arm() accepted a rate_limit aimed at a missing block";
  } catch (const fault::PlanError& e) {
    expect_contains(e.what(), "unknown block 'policr'");
    expect_contains(e.what(), "did you mean 'policer'?");
  }
}

TEST(RateLimitFault, MidRunRetimeFollowsScheduleAndRestores) {
  sim::Engine eng;
  graph::Graph g(eng);
  graph::TokenBucketConfig cfg;
  cfg.rate_gbps = 2.5;
  cfg.burst_bytes = 30000;
  auto& tb = g.emplace<graph::TokenBucketBlock>(eng, "policer", cfg);

  fault::FaultPlan plan;
  plan.rate_limit(kPicosPerMilli, 2 * kPicosPerMilli, "policer",
                  /*rate_gbps=*/1.0, /*ramp=*/0, /*burst_bytes=*/5000);
  fault::Injector inj(eng, plan);
  inj.attach_graph(g);
  inj.arm();

  double mid_rate = 0.0, end_rate = 0.0;
  std::size_t mid_burst = 0, end_burst = 0;
  eng.schedule_at(2 * kPicosPerMilli, [&] {
    mid_rate = tb.rate_gbps();
    mid_burst = tb.burst_bytes();
  });
  eng.schedule_at(4 * kPicosPerMilli, [&] {
    end_rate = tb.rate_gbps();
    end_burst = tb.burst_bytes();
  });
  eng.run();

  EXPECT_DOUBLE_EQ(mid_rate, 1.0);
  EXPECT_EQ(mid_burst, 5000u);
  // After `duration` the pre-fault contract is reinstated.
  EXPECT_DOUBLE_EQ(end_rate, 2.5);
  EXPECT_EQ(end_burst, 30000u);
}

TEST(RateLimitFault, RampedRetimeStepsThroughIntermediateRates) {
  sim::Engine eng;
  graph::Graph g(eng);
  graph::TokenBucketConfig cfg;
  cfg.rate_gbps = 2.0;
  auto& tb = g.emplace<graph::TokenBucketBlock>(eng, "policer", cfg);

  fault::FaultPlan plan;
  plan.rate_limit(kPicosPerMilli, 4 * kPicosPerMilli, "policer",
                  /*rate_gbps=*/1.0, /*ramp=*/2 * kPicosPerMilli);
  fault::Injector inj(eng, plan);
  inj.attach_graph(g);
  inj.arm();

  double mid_ramp = 0.0, plateau = 0.0;
  // Halfway through the ramp the rate must sit strictly between the
  // contract and the fault plateau (stepped, not a cliff).
  eng.schedule_at(2 * kPicosPerMilli - 1, [&] { mid_ramp = tb.rate_gbps(); });
  eng.schedule_at(4 * kPicosPerMilli, [&] { plateau = tb.rate_gbps(); });
  eng.run();

  EXPECT_LT(mid_ramp, 2.0);
  EXPECT_GT(mid_ramp, 1.0);
  EXPECT_DOUBLE_EQ(plateau, 1.0);
  EXPECT_DOUBLE_EQ(tb.rate_gbps(), 2.0);  // restored after duration
}

TEST(RateLimitFault, QueueCapRetimesFifoAndBucketBacklogs) {
  sim::Engine eng;
  graph::Graph g(eng);
  auto& q = g.emplace<graph::FifoQueueBlock>(eng, "egress_q",
                                             graph::FifoQueueConfig{});
  const std::size_t orig = q.queue_frames();

  fault::FaultPlan plan;
  plan.queue_cap(kPicosPerMilli, 2 * kPicosPerMilli, "egress_q",
                 /*queue_frames=*/8);
  fault::Injector inj(eng, plan);
  inj.attach_graph(g);
  inj.arm();

  std::size_t mid = 0;
  eng.schedule_at(2 * kPicosPerMilli, [&] { mid = q.queue_frames(); });
  eng.run();

  EXPECT_EQ(mid, 8u);
  EXPECT_EQ(q.queue_frames(), orig);
}

TEST(RateLimitFault, ValidateFaultTargetsChecksNamesAndTypes) {
  const TopologyFile topo = TopologyFile::from_json(kCarrierPolicer);

  // A well-aimed plan passes without building anything.
  fault::FaultPlan good;
  good.rate_limit(kPicosPerMilli, kPicosPerMilli, "policer", 1.0);
  good.queue_cap(kPicosPerMilli, kPicosPerMilli, "egress_q", 16);
  EXPECT_NO_THROW(graph::validate_fault_targets(topo, good));

  // Unknown name: did-you-mean against the eligible blocks.
  fault::FaultPlan typo;
  typo.rate_limit(kPicosPerMilli, kPicosPerMilli, "policr", 1.0);
  try {
    graph::validate_fault_targets(topo, typo);
    FAIL() << "typoed target validated";
  } catch (const graph::TopologyError& e) {
    expect_contains(e.what(), "unknown block 'policr'");
    expect_contains(e.what(), "did you mean 'policer'?");
  }

  // Right name, wrong block type: the likelier authoring mistake gets a
  // plain answer.
  fault::FaultPlan wrong_type;
  wrong_type.rate_limit(kPicosPerMilli, kPicosPerMilli, "tap", 1.0);
  try {
    graph::validate_fault_targets(topo, wrong_type);
    FAIL() << "rate_limit on a monitor validated";
  } catch (const graph::TopologyError& e) {
    expect_contains(e.what(), "is not a token_bucket");
  }
}

TEST(RateLimitFault, SqueezePerturbsTheClosedLoop) {
  // A mid-run squeeze to half the token rate must cost goodput relative
  // to the unfaulted run — proof the retime reaches the live dataplane.
  const TopologyFile topo =
      TopologyFile::from_json(with_detector_off(kCarrierPolicer));
  fault::FaultPlan squeeze;
  squeeze.rate_limit(10 * kPicosPerMilli, 20 * kPicosPerMilli, "policer",
                     /*rate_gbps=*/0.5, /*ramp=*/2 * kPicosPerMilli,
                     /*burst_bytes=*/10000);
  const auto base = graph::run_topology_trial(topo, topo.seed);
  const auto hit = graph::run_topology_trial(topo, topo.seed, /*duration=*/0,
                                             &squeeze);
  ASSERT_GT(base.tcp.bytes_acked, 0u);
  EXPECT_LT(hit.tcp.bytes_acked, base.tcp.bytes_acked);
}

// ------------------------------------- determinism with faults armed

struct PolicerOutcome {
  std::vector<graph::TopologyTrialReport> reports;
  std::string sim_metrics_json;
};

/// Three fault-armed carrier-policer trials under the multiprocess
/// Runner, mirroring the dumbbell determinism idiom in test_topology.
PolicerOutcome run_policer_trials(std::size_t jobs) {
  telemetry::registry().reset();
  std::string short_topo = kCarrierPolicer;
  const std::string dur = "\"duration_ms\": 40";
  short_topo.replace(short_topo.find(dur), dur.size(), "\"duration_ms\": 15");
  const TopologyFile topo = TopologyFile::from_json(short_topo);
  fault::FaultPlan plan;
  plan.rate_limit(4 * kPicosPerMilli, 6 * kPicosPerMilli, "policer", 1.25,
                  /*ramp=*/kPicosPerMilli, /*burst_bytes=*/15000);
  plan.queue_cap(5 * kPicosPerMilli, 4 * kPicosPerMilli, "egress_q", 32);

  PolicerOutcome out;
  out.reports.resize(3);
  core::TrialPlan tp;
  for (std::size_t i = 0; i < out.reports.size(); ++i) {
    core::TrialPoint pt;
    pt.seed = topo.seed + i;
    tp.points.push_back(pt);
  }
  tp.run = [&](const core::TrialPoint& pt) {
    const auto r = graph::run_topology_trial(topo, pt.seed, /*duration=*/0,
                                             &plan);
    core::TrialStats st;
    st.metric = static_cast<double>(r.tcp.bytes_acked);
    out.reports[pt.index] = r;  // slots are disjoint across workers
    return st;
  };
  core::RunnerConfig rcfg;
  rcfg.jobs = jobs;
  (void)core::Runner{rcfg}.run(tp);
  out.sim_metrics_json =
      telemetry::registry().to_json(telemetry::Snapshot::kSimOnly);
  return out;
}

TEST(RateLimitFault, FaultArmedTrialsAreByteIdenticalAcrossJobs) {
  const bool was_enabled = telemetry::enabled();
  telemetry::set_enabled(true);

  const PolicerOutcome serial = run_policer_trials(1);
  const PolicerOutcome parallel = run_policer_trials(4);

  ASSERT_EQ(serial.reports.size(), parallel.reports.size());
  for (std::size_t i = 0; i < serial.reports.size(); ++i) {
    EXPECT_EQ(serial.reports[i].tcp.bytes_acked,
              parallel.reports[i].tcp.bytes_acked)
        << "trial " << i;
    EXPECT_EQ(serial.reports[i].tcp.rld_detections,
              parallel.reports[i].tcp.rld_detections)
        << "trial " << i;
    EXPECT_EQ(serial.reports[i].graph_drops, parallel.reports[i].graph_drops)
        << "trial " << i;
  }
  EXPECT_GT(serial.reports[0].tcp.bytes_acked, 0u);
  EXPECT_EQ(serial.sim_metrics_json, parallel.sim_metrics_json);

  telemetry::registry().reset();
  telemetry::set_enabled(was_enabled);
}

}  // namespace
}  // namespace osnt
