// Unit tests for the common substrate: CRC, hashes, RNG, statistics.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "osnt/common/crc.hpp"
#include "osnt/common/hash.hpp"
#include "osnt/common/random.hpp"
#include "osnt/common/stats.hpp"
#include "osnt/common/time.hpp"
#include "osnt/common/types.hpp"

namespace osnt {
namespace {

// ------------------------------------------------------------- byte order

TEST(ByteOrder, Be16RoundTrip) {
  std::uint8_t buf[2];
  store_be16(buf, 0xABCD);
  EXPECT_EQ(buf[0], 0xAB);
  EXPECT_EQ(buf[1], 0xCD);
  EXPECT_EQ(load_be16(buf), 0xABCD);
}

TEST(ByteOrder, Be32RoundTrip) {
  std::uint8_t buf[4];
  store_be32(buf, 0xDEADBEEF);
  EXPECT_EQ(buf[0], 0xDE);
  EXPECT_EQ(load_be32(buf), 0xDEADBEEFu);
}

TEST(ByteOrder, Be64RoundTrip) {
  std::uint8_t buf[8];
  store_be64(buf, 0x0123456789ABCDEFull);
  EXPECT_EQ(buf[0], 0x01);
  EXPECT_EQ(buf[7], 0xEF);
  EXPECT_EQ(load_be64(buf), 0x0123456789ABCDEFull);
}

TEST(ByteOrder, Le32RoundTrip) {
  std::uint8_t buf[4];
  store_le32(buf, 0xA1B2C3D4);
  EXPECT_EQ(buf[0], 0xD4);
  EXPECT_EQ(load_le32(buf), 0xA1B2C3D4u);
}

// -------------------------------------------------------------------- CRC

TEST(Crc32, KnownVector) {
  // CRC32("123456789") = 0xCBF43926 (the classic check value).
  const char* s = "123456789";
  EXPECT_EQ(crc32(ByteSpan{reinterpret_cast<const std::uint8_t*>(s), 9}),
            0xCBF43926u);
}

TEST(Crc32, EmptyIsZero) { EXPECT_EQ(crc32({}), 0u); }

TEST(Crc32, IncrementalMatchesOneShot) {
  Bytes data;
  for (int i = 0; i < 100; ++i) data.push_back(static_cast<std::uint8_t>(i));
  Crc32 inc;
  inc.update(ByteSpan{data.data(), 40});
  inc.update(ByteSpan{data.data() + 40, 60});
  EXPECT_EQ(inc.value(), crc32(ByteSpan{data.data(), data.size()}));
}

TEST(Crc32, SensitiveToSingleBit) {
  Bytes a(64, 0);
  Bytes b = a;
  b[31] ^= 0x01;
  EXPECT_NE(crc32(ByteSpan{a.data(), a.size()}),
            crc32(ByteSpan{b.data(), b.size()}));
}

// ------------------------------------------------------------------ hash

TEST(Hash, Fnv1aKnownVector) {
  // FNV-1a 64 of empty input is the offset basis.
  EXPECT_EQ(fnv1a64({}), 0xCBF29CE484222325ull);
}

TEST(Hash, JenkinsDistinguishesPermutations) {
  const std::uint8_t a[] = {1, 2, 3};
  const std::uint8_t b[] = {3, 2, 1};
  EXPECT_NE(jenkins_oaat(ByteSpan{a, 3}), jenkins_oaat(ByteSpan{b, 3}));
}

TEST(Hash, Mix64NoFixedPointAtSmallInputs) {
  std::set<std::uint64_t> outs;
  for (std::uint64_t i = 0; i < 1000; ++i) outs.insert(mix64(i));
  EXPECT_EQ(outs.size(), 1000u);  // injective on this range
}

// ------------------------------------------------------------------- RNG

TEST(Rng, DeterministicForSeed) {
  Rng a{123}, b{123};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a{1}, b{2};
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a() == b()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, Uniform01InRange) {
  Rng r{7};
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIntRespectsBounds) {
  Rng r{9};
  for (int i = 0; i < 10000; ++i) {
    const auto v = r.uniform_int(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
  }
}

TEST(Rng, UniformIntCoversRange) {
  Rng r{5};
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(r.uniform_int(0, 7));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, ExponentialMean) {
  Rng r{11};
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += r.exponential(5.0);
  EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(Rng, NormalMoments) {
  Rng r{13};
  RunningStats s;
  for (int i = 0; i < 200000; ++i) s.add(r.normal(10.0, 3.0));
  EXPECT_NEAR(s.mean(), 10.0, 0.05);
  EXPECT_NEAR(s.stddev(), 3.0, 0.05);
}

TEST(Rng, ParetoBounded) {
  Rng r{17};
  for (int i = 0; i < 10000; ++i) {
    const double v = r.pareto(1.2, 64.0, 1518.0);
    EXPECT_GE(v, 64.0 - 1e-9);
    EXPECT_LE(v, 1518.0 + 1e-9);
  }
}

TEST(Rng, ChanceProbability) {
  Rng r{19};
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i)
    if (r.chance(0.25)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.01);
}

// ------------------------------------------------------------- statistics

TEST(RunningStats, BasicMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.1380899, 1e-6);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, EmptyIsSafe) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(SampleSet, ExactQuantiles) {
  SampleSet s;
  for (int i = 100; i >= 1; --i) s.add(i);  // reverse order on purpose
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 100.0);
  EXPECT_NEAR(s.median(), 50.5, 1e-9);
  EXPECT_NEAR(s.quantile(0.99), 99.01, 1e-9);
}

TEST(SampleSet, QuantileOnEmpty) {
  SampleSet s;
  EXPECT_EQ(s.quantile(0.5), 0.0);
}

TEST(SampleSet, MeanTracksRunningStats) {
  SampleSet s;
  Rng r{3};
  for (int i = 0; i < 1000; ++i) s.add(r.uniform(0, 10));
  EXPECT_GT(s.mean(), 4.5);
  EXPECT_LT(s.mean(), 5.5);
}

TEST(Histogram, BinningAndQuantile) {
  Histogram h{0.0, 100.0, 10};
  for (int i = 0; i < 100; ++i) h.add(i + 0.5);
  EXPECT_EQ(h.total(), 100u);
  EXPECT_EQ(h.underflow(), 0u);
  EXPECT_EQ(h.overflow(), 0u);
  for (std::size_t b = 0; b < 10; ++b) EXPECT_EQ(h.bin(b), 10u);
  EXPECT_NEAR(h.quantile(0.5), 55.0, 10.0);
}

TEST(Histogram, OutOfRangeCounted) {
  Histogram h{0.0, 10.0, 5};
  h.add(-1.0);
  h.add(11.0);
  h.add(5.0);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, AsciiRenders) {
  Histogram h{0.0, 10.0, 2};
  h.add(1.0);
  h.add(6.0);
  h.add(7.0);
  const std::string art = h.ascii(10);
  EXPECT_NE(art.find('#'), std::string::npos);
}

// ------------------------------------------------------------------ time

TEST(Time, Conversions) {
  EXPECT_EQ(from_nanos(1.0), kPicosPerNano);
  EXPECT_EQ(from_micros(1.0), kPicosPerMicro);
  EXPECT_EQ(from_seconds(1.0), kPicosPerSec);
  EXPECT_DOUBLE_EQ(to_seconds(kPicosPerSec), 1.0);
  EXPECT_DOUBLE_EQ(to_nanos(kPicosPerMicro), 1000.0);
}

}  // namespace
}  // namespace osnt
