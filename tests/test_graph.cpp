// Graph API: the block library's per-block semantics (queueing, RED,
// policing/shaping, delay/BER, ECMP spreading, taps), the wiring error
// contract, and the claim that a DUT wrapped as a graph node behaves
// byte-identically to the same DUT cabled by hand through the deprecated
// constructors.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "osnt/core/device.hpp"
#include "osnt/core/measure.hpp"
#include "osnt/dut/legacy_switch.hpp"
#include "osnt/graph/blocks.hpp"
#include "osnt/graph/dut_blocks.hpp"
#include "osnt/graph/graph.hpp"
#include "osnt/net/builder.hpp"
#include "osnt/net/packet.hpp"

namespace osnt {
namespace {

/// External egress for tests: remembers every delivered frame and when its
/// last bit arrived.
struct Collector final : public sim::FrameSink {
  std::vector<net::Packet> pkts;
  std::vector<Picos> at;
  void on_frame(net::Packet pkt, Picos /*first_bit*/, Picos last_bit) override {
    pkts.push_back(std::move(pkt));
    at.push_back(last_bit);
  }
};

net::Packet make_udp(std::uint16_t src_port, std::size_t payload = 200) {
  net::PacketBuilder b;
  return b
      .eth(net::MacAddr::from_index(1), net::MacAddr::from_index(2))
      .ipv4(net::Ipv4Addr::of(10, 0, 0, 1), net::Ipv4Addr::of(10, 0, 0, 2),
            net::ipproto::kUdp)
      .udp(src_port, 9000)
      .payload_random(payload, 42)
      .build();
}

/// Hand a frame to a graph input as if a link had just delivered it at `t`.
void inject(sim::FrameSink& in, net::Packet pkt, Picos t) {
  in.on_frame(std::move(pkt), t, t);
}

TEST(Graph, FifoQueueSerializesAndTailDrops) {
  sim::Engine eng;
  graph::Graph g{eng};
  graph::FifoQueueConfig cfg;
  cfg.rate_gbps = 10.0;
  cfg.queue_frames = 2;
  auto& q = g.emplace<graph::FifoQueueBlock>(eng, "q", cfg);
  Collector out;
  g.connect_output("q", 0, out);
  g.start();

  sim::FrameSink& in = g.input("q", 0);
  const net::Packet pkt = make_udp(1000);
  for (int i = 0; i < 5; ++i) inject(in, pkt, 0);
  eng.run();

  // Two slots (one serializing + one waiting); the other three tail-drop.
  EXPECT_EQ(out.pkts.size(), 2u);
  EXPECT_EQ(q.tail_drops(), 3u);
  EXPECT_EQ(q.depth(), 0u);
  EXPECT_EQ(q.peak_depth(), 2u);
  EXPECT_EQ(q.frames_in(), 5u);
  EXPECT_EQ(q.frames_out(), 2u);
  EXPECT_EQ(q.drops(), 3u);

  // Departures are spaced by the store-and-forward serialization time.
  ASSERT_EQ(out.at.size(), 2u);
  const Picos air = net::serialization_time(pkt.line_len(), cfg.rate_gbps);
  EXPECT_EQ(out.at[0], air);
  EXPECT_EQ(out.at[1], 2 * air);
}

TEST(Graph, RedForcesDropsAboveMaxThreshold) {
  sim::Engine eng;
  graph::Graph g{eng};
  graph::RedConfig cfg;
  cfg.rate_gbps = 10.0;
  cfg.queue_frames = 100;
  cfg.min_th = 1.0;
  cfg.max_th = 2.0;
  cfg.max_p = 1.0;
  cfg.weight = 1.0;  // average == instantaneous depth: deterministic ramp
  auto& red = g.emplace<graph::RedBlock>(eng, "aqm", cfg);
  Collector out;
  g.connect_output("aqm", 0, out);
  g.start();

  sim::FrameSink& in = g.input("aqm", 0);
  for (int i = 0; i < 50; ++i) inject(in, make_udp(2000), 0);
  eng.run();

  // With weight 1 the average IS the depth: frames 1–2 ramp it to
  // max_th, every later arrival is a forced drop — no lottery involved.
  EXPECT_EQ(red.forced_drops(), 48u);
  EXPECT_EQ(red.early_drops(), 0u);
  EXPECT_EQ(red.drops(), 48u);
  EXPECT_EQ(out.pkts.size(), 2u);
  EXPECT_EQ(red.tail_drops(), 0u);
}

TEST(Graph, RedDropsEarlyBetweenThresholds) {
  sim::Engine eng;
  graph::Graph g{eng};
  graph::RedConfig cfg;
  cfg.rate_gbps = 10.0;
  cfg.queue_frames = 1000;
  cfg.min_th = 1.0;
  cfg.max_th = 900.0;  // unreachably high: every drop is an early drop
  cfg.max_p = 0.5;
  cfg.weight = 1.0;
  cfg.seed = 7;
  auto& red = g.emplace<graph::RedBlock>(eng, "aqm", cfg);
  Collector out;
  g.connect_output("aqm", 0, out);
  g.start();

  sim::FrameSink& in = g.input("aqm", 0);
  for (int i = 0; i < 300; ++i) inject(in, make_udp(2000), 0);
  eng.run();

  EXPECT_GT(red.early_drops(), 0u);
  EXPECT_EQ(red.forced_drops(), 0u);
  EXPECT_EQ(red.tail_drops(), 0u);
  EXPECT_EQ(red.drops(), red.early_drops());
  EXPECT_EQ(out.pkts.size(), 300u - red.drops());
  EXPECT_GT(red.avg_depth(), cfg.min_th);
}

TEST(Graph, TokenBucketPolices) {
  sim::Engine eng;
  graph::Graph g{eng};
  graph::TokenBucketConfig cfg;
  cfg.rate_gbps = 0.001;  // refill is negligible within the test window
  cfg.burst_bytes = 2000;
  cfg.shape = false;
  auto& tb = g.emplace<graph::TokenBucketBlock>(eng, "police", cfg);
  Collector out;
  g.connect_output("police", 0, out);
  g.start();

  const net::Packet pkt = make_udp(3000, 800);  // line_len well under 2000
  sim::FrameSink& in = g.input("police", 0);
  for (int i = 0; i < 4; ++i) inject(in, pkt, 0);
  eng.run();

  // Bucket holds 2000 byte-tokens: exactly two ~850 B frames conform.
  EXPECT_EQ(tb.conforming(), 2u);
  EXPECT_EQ(tb.policed(), 2u);
  EXPECT_EQ(tb.shaped(), 0u);
  EXPECT_EQ(out.pkts.size(), 2u);
  EXPECT_EQ(tb.drops(), 2u);
}

TEST(Graph, TokenBucketShapesToRate) {
  sim::Engine eng;
  graph::Graph g{eng};
  graph::TokenBucketConfig cfg;
  cfg.rate_gbps = 1.0;
  cfg.burst_bytes = 2000;
  cfg.shape = true;
  auto& tb = g.emplace<graph::TokenBucketBlock>(eng, "shape", cfg);
  Collector out;
  g.connect_output("shape", 0, out);
  g.start();

  const net::Packet pkt = make_udp(4000, 800);
  sim::FrameSink& in = g.input("shape", 0);
  for (int i = 0; i < 6; ++i) inject(in, pkt, 0);
  eng.run();

  // Nothing is lost in shape mode; excess frames are delayed instead.
  EXPECT_EQ(out.pkts.size(), 6u);
  EXPECT_EQ(tb.policed(), 0u);
  EXPECT_EQ(tb.conforming() + tb.shaped(), 6u);
  EXPECT_GT(tb.shaped(), 0u);

  // Steady-state spacing approaches line_len / rate; order is FIFO.
  const double bytes_per_pico = cfg.rate_gbps / 8000.0;
  const auto ideal =
      static_cast<Picos>(static_cast<double>(pkt.line_len()) / bytes_per_pico);
  for (std::size_t i = 1; i < out.at.size(); ++i) {
    EXPECT_GE(out.at[i], out.at[i - 1]);  // conforming frames share t=0
  }
  const Picos tail_gap = out.at[5] - out.at[4];
  EXPECT_NEAR(static_cast<double>(tail_gap), static_cast<double>(ideal),
              static_cast<double>(ideal) * 0.01);
}

TEST(Graph, DelayBerShiftsArrivalAndCorrupts) {
  sim::Engine eng;
  graph::Graph g{eng};
  graph::DelayBerConfig cfg;
  cfg.delay = 3 * kPicosPerMicro;
  cfg.ber = 0.0;
  g.emplace<graph::DelayBerBlock>(eng, "wan", cfg);
  Collector out;
  g.connect_output("wan", 0, out);
  g.start();

  inject(g.input("wan", 0), make_udp(5000), 10 * kPicosPerNano);
  eng.run();
  ASSERT_EQ(out.pkts.size(), 1u);
  EXPECT_EQ(out.at[0], 10 * kPicosPerNano + 3 * kPicosPerMicro);
  EXPECT_FALSE(out.pkts[0].fcs_bad);

  // A near-1 BER makes the corruption lottery certain (p_hit rounds to
  // 1.0 over a whole frame): every frame is marked.
  graph::DelayBerConfig noisy;
  noisy.ber = 0.999999;
  auto& bad = g.emplace<graph::DelayBerBlock>(eng, "noise", noisy);
  Collector out2;
  g.connect_output("noise", 0, out2);
  for (int i = 0; i < 4; ++i) inject(g.input("noise", 0), make_udp(5001), 0);
  eng.run();
  EXPECT_EQ(bad.corrupted(), 4u);
  ASSERT_EQ(out2.pkts.size(), 4u);
  for (const auto& p : out2.pkts) EXPECT_TRUE(p.fcs_bad);
}

TEST(Graph, EcmpIsFlowCoherentAndSpreads) {
  sim::Engine eng;
  graph::Graph g{eng};
  graph::EcmpConfig cfg;
  cfg.fanout = 2;
  g.emplace<graph::EcmpBlock>(eng, "spray", cfg);
  auto& s0 = g.emplace<graph::SinkBlock>(eng, "s0");
  auto& s1 = g.emplace<graph::SinkBlock>(eng, "s1");
  g.connect("spray", 0, "s0", 0);
  g.connect("spray", 1, "s1", 0);
  g.start();

  sim::FrameSink& in = g.input("spray", 0);
  // Same 5-tuple repeatedly: must never split across paths.
  for (int i = 0; i < 10; ++i) inject(in, make_udp(6000), 0);
  eng.run();
  EXPECT_TRUE((s0.frames_in() == 10 && s1.frames_in() == 0) ||
              (s0.frames_in() == 0 && s1.frames_in() == 10))
      << "s0=" << s0.frames_in() << " s1=" << s1.frames_in();

  // Many distinct flows: both paths must see traffic.
  for (std::uint16_t p = 7000; p < 7032; ++p) inject(in, make_udp(p), 0);
  eng.run();
  EXPECT_GT(s0.frames_in(), 0u);
  EXPECT_GT(s1.frames_in(), 0u);
  EXPECT_EQ(s0.frames_in() + s1.frames_in(), 42u);
  EXPECT_EQ(g.total_frames_in(), 42u + 42u);  // spray + the two sinks
}

TEST(Graph, MonitorTapsWithoutModifying) {
  sim::Engine eng;
  graph::Graph g{eng};
  auto& mon = g.emplace<graph::MonitorBlock>(eng, "tap");
  Collector out;
  g.connect_output("tap", 0, out);
  g.start();

  net::Packet clean = make_udp(8000);
  net::Packet dirty = make_udp(8001);
  dirty.fcs_bad = true;
  const std::uint64_t expect_bytes = clean.wire_len() + dirty.wire_len();
  inject(g.input("tap", 0), clean, 0);
  inject(g.input("tap", 0), dirty, 0);
  eng.run();

  ASSERT_EQ(out.pkts.size(), 2u);
  EXPECT_EQ(mon.bytes(), expect_bytes);
  EXPECT_EQ(mon.fcs_errors(), 1u);
  EXPECT_EQ(mon.frame_bytes().count(), 2u);
  EXPECT_TRUE(out.pkts[1].fcs_bad);  // the tap forwards even bad frames
}

TEST(Graph, WiringErrorsAreHard) {
  sim::Engine eng;
  graph::Graph g{eng};
  g.emplace<graph::SinkBlock>(eng, "sink");
  g.emplace<graph::MonitorBlock>(eng, "tap");

  // Duplicate name.
  EXPECT_THROW(g.emplace<graph::SinkBlock>(eng, "sink"), graph::GraphError);
  // Unknown endpoints.
  EXPECT_THROW(g.connect("nope", 0, "sink", 0), graph::GraphError);
  EXPECT_THROW((void)g.input("nope", 0), graph::GraphError);
  EXPECT_THROW((void)g.at("nope"), graph::GraphError);
  EXPECT_EQ(g.find("nope"), nullptr);
  // Out-of-range ports: a sink has no outputs, one input.
  EXPECT_THROW(g.connect("sink", 0, "tap", 0), graph::GraphError);
  EXPECT_THROW((void)g.input("sink", 1), graph::GraphError);
  Collector out;
  // Double-claimed output.
  g.connect("tap", 0, "sink", 0);
  EXPECT_THROW(g.connect_output("tap", 0, out), graph::GraphError);
  // A block must be named.
  EXPECT_THROW(graph::SinkBlock(eng, ""), graph::GraphError);
  // Null add.
  EXPECT_THROW(g.add(nullptr), graph::GraphError);
}

TEST(Graph, UnwiredOutputCountsAsDrop) {
  sim::Engine eng;
  graph::Graph g{eng};
  auto& mon = g.emplace<graph::MonitorBlock>(eng, "tap");
  g.start();
  inject(g.input("tap", 0), make_udp(9000), 0);
  eng.run();
  EXPECT_EQ(mon.frames_in(), 1u);
  EXPECT_EQ(mon.frames_out(), 0u);
  EXPECT_EQ(mon.drops(), 1u);
  EXPECT_EQ(g.total_drops(), 1u);
}

/// The same capture experiment through (a) the deprecated hand-cabled
/// constructor and (b) the graph-wrapped block must agree exactly: the
/// adapter layer adds indirection, never behaviour.
core::RunResult run_legacy_direct() {
  sim::Engine eng;
  core::OsntDevice osnt{eng};
  dut::LegacySwitch sw{dut::GraphWired{}, eng};
  hw::connect(osnt.port(0), sw.port(0));
  hw::connect(osnt.port(1), sw.port(1));
  core::TrafficSpec spec;
  spec.rate = gen::RateSpec::gbps(2.0);
  spec.frame_size = 512;
  spec.seed = 11;
  return core::run_capture_test(eng, osnt, 0, 1, spec, 2 * kPicosPerMilli);
}

core::RunResult run_legacy_graph() {
  sim::Engine eng;
  core::OsntDevice osnt{eng};
  graph::Graph g{eng};
  g.emplace<graph::LegacySwitchBlock>(eng, "sw");
  for (std::size_t p : {0, 1}) {
    osnt.port(p).out_link().connect(g.input("sw", p));
    g.connect_output("sw", p, osnt.port(p).rx());
  }
  g.start();
  core::TrafficSpec spec;
  spec.rate = gen::RateSpec::gbps(2.0);
  spec.frame_size = 512;
  spec.seed = 11;
  return core::run_capture_test(eng, osnt, 0, 1, spec, 2 * kPicosPerMilli);
}

TEST(Graph, LegacySwitchBlockMatchesHandCabledSwitch) {
  const core::RunResult direct = run_legacy_direct();
  const core::RunResult wrapped = run_legacy_graph();
  EXPECT_GT(direct.tx_frames, 0u);
  EXPECT_EQ(direct.tx_frames, wrapped.tx_frames);
  EXPECT_EQ(direct.rx_frames, wrapped.rx_frames);
  EXPECT_EQ(direct.latency_ns.count(), wrapped.latency_ns.count());
  EXPECT_DOUBLE_EQ(direct.latency_ns.min(), wrapped.latency_ns.min());
  EXPECT_DOUBLE_EQ(direct.latency_ns.max(), wrapped.latency_ns.max());
  EXPECT_DOUBLE_EQ(direct.latency_ns.mean(), wrapped.latency_ns.mean());
}

}  // namespace
}  // namespace osnt
