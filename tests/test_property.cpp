// Property and robustness tests: randomized round trips and "never
// crash on garbage" sweeps over the parsers and codecs.
#include <gtest/gtest.h>

#include <vector>

#include "osnt/common/random.hpp"
#include "osnt/net/builder.hpp"
#include "osnt/net/checksum.hpp"
#include "osnt/net/parser.hpp"
#include "osnt/net/pcap.hpp"
#include "osnt/openflow/messages.hpp"
#include "osnt/tcp/flow.hpp"

namespace osnt {
namespace {

// ------------------------------------------------- parser never crashes

TEST(ParserFuzz, RandomBytesNeverCrash) {
  Rng rng{0xF422};
  for (int trial = 0; trial < 5000; ++trial) {
    Bytes junk(rng.uniform_int(0, 200));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng());
    const auto parsed = net::parse_packet(ByteSpan{junk.data(), junk.size()});
    if (parsed) {
      // Whatever was decoded must stay within the buffer.
      EXPECT_LE(parsed->payload_offset, junk.size() + 60);
    }
  }
}

TEST(ParserFuzz, TruncationsOfValidFrameNeverCrash) {
  net::PacketBuilder b;
  const net::Packet p =
      b.eth(net::MacAddr::from_index(1), net::MacAddr::from_index(2))
          .vlan(7)
          .ipv4(net::Ipv4Addr::of(10, 1, 2, 3), net::Ipv4Addr::of(10, 4, 5, 6),
                net::ipproto::kTcp)
          .tcp(80, 443)
          .payload_random(200, 1)
          .build();
  for (std::size_t len = 0; len <= p.size(); ++len) {
    const auto parsed = net::parse_packet(ByteSpan{p.data.data(), len});
    if (len < net::EthHeader::kSize) {
      EXPECT_FALSE(parsed);
    } else {
      ASSERT_TRUE(parsed);
    }
  }
}

// ----------------------------------------------- randomized build⇄parse

TEST(BuilderProperty, RandomizedUdpRoundTrip) {
  Rng rng{0xB00};
  for (int trial = 0; trial < 500; ++trial) {
    const auto src = static_cast<std::uint32_t>(rng());
    const auto dst = static_cast<std::uint32_t>(rng());
    const auto sport = static_cast<std::uint16_t>(rng.uniform_int(1, 65535));
    const auto dport = static_cast<std::uint16_t>(rng.uniform_int(1, 65535));
    const auto size = rng.uniform_int(64, 1518);
    const bool tagged = rng.chance(0.3);
    const auto vid = static_cast<std::uint16_t>(rng.uniform_int(1, 4094));

    net::PacketBuilder b;
    b.eth(net::MacAddr::from_index(rng()), net::MacAddr::from_index(rng()));
    if (tagged) b.vlan(vid);
    b.ipv4(net::Ipv4Addr{src}, net::Ipv4Addr{dst}, net::ipproto::kUdp)
        .udp(sport, dport)
        .pad_to_frame(size);
    const net::Packet p = b.build();

    EXPECT_EQ(p.wire_len(), size);
    const auto parsed = net::parse_packet(p.bytes());
    ASSERT_TRUE(parsed);
    EXPECT_EQ(parsed->ipv4.src.v, src);
    EXPECT_EQ(parsed->ipv4.dst.v, dst);
    EXPECT_EQ(parsed->udp.src_port, sport);
    EXPECT_EQ(parsed->udp.dst_port, dport);
    EXPECT_EQ(parsed->vlan.has_value(), tagged);
    if (tagged) EXPECT_EQ(parsed->vlan->vid, vid);
    // Header checksum always verifies.
    const ByteSpan hdr{p.data.data() + parsed->l3_offset,
                       parsed->ipv4.header_len()};
    EXPECT_EQ(net::internet_checksum(hdr), 0u);
  }
}

// -------------------------------------------------- OF codec properties

openflow::OfMatch random_match(Rng& rng) {
  openflow::OfMatch m;
  m.wildcards = static_cast<std::uint32_t>(rng()) & openflow::wc::kAll;
  // Keep the prefix wildcard fields within their 0..63 encoding.
  m.in_port = static_cast<std::uint16_t>(rng());
  m.dl_src = net::MacAddr::from_index(rng());
  m.dl_dst = net::MacAddr::from_index(rng());
  m.dl_vlan = static_cast<std::uint16_t>(rng());
  m.dl_vlan_pcp = static_cast<std::uint8_t>(rng.uniform_int(0, 7));
  m.dl_type = static_cast<std::uint16_t>(rng());
  m.nw_tos = static_cast<std::uint8_t>(rng());
  m.nw_proto = static_cast<std::uint8_t>(rng());
  m.nw_src = static_cast<std::uint32_t>(rng());
  m.nw_dst = static_cast<std::uint32_t>(rng());
  m.tp_src = static_cast<std::uint16_t>(rng());
  m.tp_dst = static_cast<std::uint16_t>(rng());
  return m;
}

TEST(OfCodecProperty, RandomFlowModsRoundTrip) {
  Rng rng{0x0F};
  for (int trial = 0; trial < 500; ++trial) {
    openflow::FlowMod fm;
    fm.match = random_match(rng);
    fm.cookie = rng();
    fm.command = static_cast<openflow::FlowModCommand>(rng.uniform_int(0, 4));
    fm.idle_timeout = static_cast<std::uint16_t>(rng());
    fm.hard_timeout = static_cast<std::uint16_t>(rng());
    fm.priority = static_cast<std::uint16_t>(rng());
    fm.buffer_id = static_cast<std::uint32_t>(rng());
    fm.out_port = static_cast<std::uint16_t>(rng());
    fm.flags = static_cast<std::uint16_t>(rng.uniform_int(0, 3));
    const auto n_actions = rng.uniform_int(0, 4);
    for (std::uint64_t a = 0; a < n_actions; ++a) {
      switch (rng.uniform_int(0, 2)) {
        case 0:
          fm.actions.emplace_back(openflow::ActionOutput{
              static_cast<std::uint16_t>(rng()), 0xFFFF});
          break;
        case 1:
          fm.actions.emplace_back(openflow::ActionSetVlanVid{
              static_cast<std::uint16_t>(rng.uniform_int(0, 4095))});
          break;
        default:
          fm.actions.emplace_back(openflow::ActionStripVlan{});
      }
    }
    const auto xid = static_cast<std::uint32_t>(rng());
    const Bytes wire = openflow::encode(fm, xid);
    const auto back = openflow::decode(ByteSpan{wire.data(), wire.size()});
    ASSERT_TRUE(back);
    EXPECT_EQ(back->xid, xid);
    const auto& fm2 = std::get<openflow::FlowMod>(back->msg);
    EXPECT_EQ(fm2.match, fm.match);
    EXPECT_EQ(fm2.cookie, fm.cookie);
    EXPECT_EQ(fm2.command, fm.command);
    EXPECT_EQ(fm2.priority, fm.priority);
    EXPECT_EQ(fm2.actions, fm.actions);
  }
}

TEST(OfCodecFuzz, RandomBytesNeverCrash) {
  Rng rng{0xDEC0DE};
  int decoded = 0;
  for (int trial = 0; trial < 20000; ++trial) {
    Bytes junk(rng.uniform_int(0, 120));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng());
    // Bias some inputs toward plausibility so the deep paths run.
    if (!junk.empty() && rng.chance(0.5)) junk[0] = openflow::kOfVersion;
    if (junk.size() >= 4 && rng.chance(0.5))
      store_be16(junk.data() + 2, static_cast<std::uint16_t>(junk.size()));
    if (openflow::decode(ByteSpan{junk.data(), junk.size()})) ++decoded;
  }
  // A few random buffers will legitimately decode (e.g. hello frames).
  SUCCEED() << decoded << " random buffers decoded";
}

TEST(OfCodecFuzz, TruncatedRealMessagesNeverCrash) {
  Rng rng{0x7A};
  openflow::FlowMod fm;
  fm.match = random_match(rng);
  fm.actions = {openflow::ActionOutput{1}, openflow::ActionStripVlan{}};
  const Bytes wire = openflow::encode(fm, 9);
  for (std::size_t len = 0; len < wire.size(); ++len) {
    EXPECT_FALSE(openflow::decode(ByteSpan{wire.data(), len}))
        << "decoded a truncation of length " << len;
  }
}

// --------------------------------------------------------- pcap property

TEST(PcapProperty, RandomRecordsRoundTripThroughDisk) {
  Rng rng{0xCA9};
  const std::string path = "/tmp/osnt_prop_" + std::to_string(::getpid()) +
                           ".pcap";
  std::vector<net::PcapRecord> written;
  {
    net::PcapWriter w{path, true};
    std::uint64_t t = 0;
    for (int i = 0; i < 200; ++i) {
      net::PcapRecord rec;
      t += rng.uniform_int(1, 1'000'000);
      rec.ts_nanos = t;
      rec.data.resize(rng.uniform_int(20, 1514));
      for (auto& b : rec.data) b = static_cast<std::uint8_t>(rng());
      rec.orig_len = static_cast<std::uint32_t>(rec.data.size());
      w.write(rec.ts_nanos, ByteSpan{rec.data.data(), rec.data.size()});
      written.push_back(std::move(rec));
    }
  }
  const auto back = net::PcapReader::read_all(path);
  std::remove(path.c_str());
  ASSERT_EQ(back.size(), written.size());
  for (std::size_t i = 0; i < back.size(); ++i) {
    EXPECT_EQ(back[i].ts_nanos, written[i].ts_nanos);
    EXPECT_EQ(back[i].data, written[i].data);
  }
}

// ------------------------------------------------- RTO estimator (RFC 6298)

// The retransmission timer under any sample stream must stay inside
// [min_rto, max_rto], back off monotonically between samples, and be a
// pure function of its input sequence (no hidden wall-clock state).

constexpr Picos kMinRto = kPicosPerMilli;
constexpr Picos kMaxRto = 250 * kPicosPerMilli;

/// Drive an estimator with a seeded mix of RTT samples and timer fires;
/// returns the sequence of rto() values observed after each step.
std::vector<Picos> rto_walk(std::uint64_t seed, int steps) {
  Rng rng{seed};
  tcp::RtoEstimator est{kMinRto, kMaxRto};
  std::vector<Picos> out;
  out.reserve(static_cast<std::size_t>(steps));
  for (int i = 0; i < steps; ++i) {
    if (rng.uniform_int(0, 2) == 0) {
      est.backoff();  // a timer fire
    } else {
      // RTTs from 100 ns to ~80 ms: spans both clamp regimes.
      est.sample(static_cast<Picos>(
          rng.uniform_int(100, 80'000'000) * kPicosPerNano));
    }
    out.push_back(est.rto());
  }
  return out;
}

TEST(RtoProperty, BoundedForRandomSampleAndBackoffStreams) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    for (const Picos rto : rto_walk(seed, 500)) {
      EXPECT_GE(rto, kMinRto) << "seed " << seed;
      EXPECT_LE(rto, kMaxRto) << "seed " << seed;
    }
  }
}

TEST(RtoProperty, BackoffIsMonotoneUntilTheCap) {
  Rng rng{7};
  for (int trial = 0; trial < 50; ++trial) {
    tcp::RtoEstimator est{kMinRto, kMaxRto};
    const auto warmup = rng.uniform_int(0, 5);
    for (std::uint64_t i = 0; i < warmup; ++i) {
      est.sample(static_cast<Picos>(
          rng.uniform_int(1000, 5'000'000) * kPicosPerNano));
    }
    Picos prev = est.rto();
    for (int fire = 0; fire < 12; ++fire) {
      est.backoff();
      const Picos cur = est.rto();
      EXPECT_GE(cur, prev);  // doubles (or saturates), never shrinks
      EXPECT_LE(cur, kMaxRto);
      prev = cur;
    }
    EXPECT_EQ(prev, kMaxRto);  // 12 unanswered fires always saturate
    // A fresh RTT sample resets the backoff below the cap.
    est.sample(kPicosPerMilli);
    EXPECT_LT(est.rto(), kMaxRto);
  }
}

TEST(RtoProperty, IdenticalAcrossRerunsForFixedSeed) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    EXPECT_EQ(rto_walk(seed, 300), rto_walk(seed, 300)) << "seed " << seed;
  }
  EXPECT_NE(rto_walk(1, 300), rto_walk(2, 300));
}

TEST(RtoProperty, FirstSampleSeedsSrttPerRfc6298) {
  tcp::RtoEstimator est{kMinRto, kMaxRto};
  EXPECT_EQ(est.rto(), kMinRto);  // no sample yet: conservative floor
  const Picos rtt = 10 * kPicosPerMilli;
  est.sample(rtt);
  EXPECT_EQ(est.srtt(), rtt);
  EXPECT_EQ(est.rttvar(), rtt / 2);
  // RTO = SRTT + 4*RTTVAR = 3*RTT here (granularity term is negligible).
  EXPECT_EQ(est.rto(), 3 * rtt);
}

}  // namespace
}  // namespace osnt
