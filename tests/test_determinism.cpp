// Determinism: the whole simulation is seeded and single-threaded, so an
// identical scenario must reproduce bit-identical results — the property
// that makes regression comparisons and distributed debugging possible.
// Plus: fragmented workloads through the full device path.
#include <gtest/gtest.h>

#include <vector>

#include "osnt/common/random.hpp"
#include "osnt/core/device.hpp"
#include "osnt/core/measure.hpp"
#include "osnt/dut/legacy_switch.hpp"
#include "osnt/net/builder.hpp"
#include "osnt/gen/replay.hpp"
#include "osnt/net/fragment.hpp"
#include "osnt/net/pcap.hpp"
#include "osnt/oflops/context.hpp"
#include "osnt/oflops/flowmod_latency.hpp"

namespace osnt {
namespace {

core::RunResult run_scenario() {
  sim::Engine eng;
  core::OsntDevice osnt{eng};
  dut::LegacySwitch sw{eng};
  hw::connect(osnt.port(0), sw.port(0));
  hw::connect(osnt.port(1), sw.port(1));
  net::PacketBuilder b;
  (void)osnt.port(1).tx().transmit(
      b.eth(net::MacAddr::from_index(2), net::MacAddr::from_index(1))
          .ipv4(net::Ipv4Addr::of(10, 0, 1, 1), net::Ipv4Addr::of(10, 0, 0, 1),
                net::ipproto::kUdp)
          .udp(5001, 1024)
          .build());
  eng.run();
  core::TrafficSpec spec;
  spec.rate = gen::RateSpec::gbps(3.0);
  spec.frame_size = 512;
  spec.arrivals = core::TrafficSpec::Arrivals::kPoisson;  // uses the RNG
  spec.seed = 99;
  return core::run_capture_test(eng, osnt, 0, 1, spec, 2 * kPicosPerMilli);
}

TEST(Determinism, IdenticalScenariosBitIdentical) {
  const auto a = run_scenario();
  const auto b = run_scenario();
  EXPECT_EQ(a.tx_frames, b.tx_frames);
  EXPECT_EQ(a.rx_frames, b.rx_frames);
  EXPECT_EQ(a.captured, b.captured);
  ASSERT_EQ(a.latency_ns.count(), b.latency_ns.count());
  // Sample-for-sample equality, not just summary statistics.
  EXPECT_EQ(a.latency_ns.samples(), b.latency_ns.samples());
}

TEST(Determinism, DifferentSeedsDiffer) {
  sim::Engine eng;
  core::OsntDevice osnt{eng};
  hw::connect(osnt.port(0), osnt.port(1));
  core::TrafficSpec spec;
  spec.rate = gen::RateSpec::gbps(3.0);
  spec.arrivals = core::TrafficSpec::Arrivals::kPoisson;
  spec.seed = 1;
  const auto a = core::run_capture_test(eng, osnt, 0, 1, spec, kPicosPerMilli);
  sim::Engine eng2;
  core::OsntDevice osnt2{eng2};
  hw::connect(osnt2.port(0), osnt2.port(1));
  spec.seed = 2;
  const auto b =
      core::run_capture_test(eng2, osnt2, 0, 1, spec, kPicosPerMilli);
  // Different Poisson draws → different frame counts (with high odds).
  EXPECT_NE(a.latency_ns.samples(), b.latency_ns.samples());
}

TEST(Determinism, OflopsModuleReproduces) {
  auto run_once = [] {
    dut::OpenFlowSwitchConfig sw_cfg;
    sw_cfg.commit_base = kPicosPerMilli;
    oflops::Testbed tb{sw_cfg};
    oflops::FlowModLatencyConfig cfg;
    cfg.rounds = 4;
    cfg.table_size = 8;
    oflops::FlowModLatencyModule mod{cfg};
    const auto rep = tb.ctx.run(mod, 120 * kPicosPerSec);
    for (const auto& [name, d] : rep.distributions)
      if (name == "data_plane_ms") return d.samples();
    return std::vector<double>{};
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(FragmentedWorkload, SurvivesDeviceAndReassembles) {
  // Generator port 0 emits jumbos pre-fragmented to MTU 1500; the monitor
  // captures the fragments; host-side reassembly recovers every datagram.
  sim::Engine eng;
  core::OsntDevice dev{eng};
  hw::connect(dev.port(0), dev.port(1));

  std::vector<net::PcapRecord> recs;
  for (int i = 0; i < 20; ++i) {
    net::PacketBuilder b;
    net::Packet p =
        b.eth(net::MacAddr::from_index(1), net::MacAddr::from_index(2))
            .ipv4(net::Ipv4Addr::of(10, 0, 0, 1), net::Ipv4Addr::of(10, 0, 1, 1),
                  net::ipproto::kUdp)
            .udp(1024, 5001)
            .payload_random(4000, static_cast<std::uint64_t>(i))
            .build();
    store_be16(p.data.data() + net::EthHeader::kSize + 4,
               static_cast<std::uint16_t>(1000 + i));  // unique IP id
    net::PcapRecord rec;
    rec.ts_nanos = static_cast<std::uint64_t>(i) * 20'000;
    rec.orig_len = static_cast<std::uint32_t>(p.size());
    rec.data = std::move(p.data);
    recs.push_back(std::move(rec));
  }

  gen::TxConfig txc;
  txc.embed_timestamp = false;  // don't clobber fragment payloads
  auto& tx = dev.configure_tx(0, txc);
  tx.set_source(std::make_unique<gen::FragmentingSource>(
      std::make_unique<gen::PcapReplaySource>(std::move(recs)), 1500));
  tx.start();
  eng.run();

  // 20 datagrams × 3 fragments (4028 B datagram at 1480 B payload/frag).
  EXPECT_EQ(dev.rx(1).seen(), 60u);
  net::Ipv4Reassembler r;
  int whole = 0;
  for (const auto& rec : dev.capture().records()) {
    net::Packet f;
    f.data = rec.data;
    if (r.add(f, 0)) ++whole;
  }
  EXPECT_EQ(whole, 20);
  EXPECT_EQ(r.pending(), 0u);
}

TEST(Determinism, RandomizedScheduleCancelInterleaving) {
  // Hammer the event core with a seeded mix of schedules (including
  // reentrant ones from inside callbacks) and cancellations; two runs must
  // produce the identical firing sequence. This pins down FIFO tie-breaks,
  // slot reuse, and lazy-cancellation skimming under slab churn.
  auto run_once = [](std::uint64_t seed) {
    Rng rng{seed};
    sim::Engine eng;
    std::vector<std::pair<Picos, int>> fired;
    std::vector<sim::EventId> ids;
    int label = 0;
    for (int i = 0; i < 2000; ++i) {
      const auto t = static_cast<Picos>(rng.uniform_int(0, 5000));
      const int my = label++;
      ids.push_back(eng.schedule_at(t, [&, my] {
        fired.emplace_back(eng.now(), my);
        // A third of callbacks reschedule, exercising reentrant slab use.
        if (my % 3 == 0) {
          const int child = 100000 + my;
          eng.schedule_in(static_cast<Picos>(my % 7), [&, child] {
            fired.emplace_back(eng.now(), child);
          });
        }
      }));
      // Cancel a random earlier event now and then; some targets will
      // already have fired or been cancelled, which must be a no-op.
      if (i % 5 == 0) {
        eng.run_until(static_cast<Picos>(rng.uniform_int(0, 2500)));
        (void)eng.cancel(ids[rng.uniform_int(0, ids.size() - 1)]);
      }
    }
    eng.run();
    return fired;
  };
  const auto a = run_once(0xD5EEDULL);
  EXPECT_EQ(a, run_once(0xD5EEDULL));
  EXPECT_NE(a, run_once(0xFEEDULL));
  // Times never go backwards within one run.
  for (std::size_t i = 1; i < a.size(); ++i) {
    EXPECT_LE(a[i - 1].first, a[i].first);
  }
}

}  // namespace
}  // namespace osnt
