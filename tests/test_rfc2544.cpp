// RFC 2544 search logic, exercised against synthetic DUT behaviours.
#include <gtest/gtest.h>

#include <cmath>

#include "osnt/core/rfc2544.hpp"

namespace osnt::core {
namespace {

/// Fake DUT that forwards loss-free up to `capacity` of line rate.
TrialFn capacity_dut(double capacity) {
  return [capacity](double load, std::size_t) {
    TrialStats s;
    s.tx_frames = 10000;
    s.rx_frames = load <= capacity + 1e-12
                      ? 10000
                      : static_cast<std::uint64_t>(10000 * capacity / load);
    s.offered_gbps = 10.0 * load;
    return s;
  };
}

TEST(Rfc2544, WireRateDutFoundInOneTrial) {
  const auto pt = find_throughput(capacity_dut(1.0), 64);
  EXPECT_DOUBLE_EQ(pt.max_load_fraction, 1.0);
  EXPECT_EQ(pt.trials, 1u);
  EXPECT_NEAR(pt.gbps, 10.0, 1e-6);
  EXPECT_NEAR(pt.mpps, 14.88, 0.01);
}

TEST(Rfc2544, BinarySearchConvergesToCapacity) {
  ThroughputSearchConfig cfg;
  cfg.resolution = 0.002;
  const auto pt = find_throughput(capacity_dut(0.63), 512, cfg);
  EXPECT_NEAR(pt.max_load_fraction, 0.63, 0.002 + 1e-9);
  EXPECT_LE(pt.max_load_fraction, 0.63 + 1e-9);  // never overshoots
}

TEST(Rfc2544, DeadDutReportsZero) {
  const auto dead = [](double, std::size_t) {
    TrialStats s;
    s.tx_frames = 1000;
    s.rx_frames = 0;
    return s;
  };
  const auto pt = find_throughput(dead, 64);
  EXPECT_EQ(pt.max_load_fraction, 0.0);
  EXPECT_EQ(pt.gbps, 0.0);
}

TEST(Rfc2544, LossToleranceRelaxesSearch) {
  // DUT always loses exactly 1%.
  const auto lossy = [](double load, std::size_t) {
    TrialStats s;
    s.tx_frames = 10000;
    s.rx_frames = 9900;
    s.offered_gbps = 10.0 * load;
    return s;
  };
  ThroughputSearchConfig strict;
  EXPECT_EQ(find_throughput(lossy, 64, strict).max_load_fraction, 0.0);
  ThroughputSearchConfig relaxed;
  relaxed.loss_tolerance = 0.02;
  EXPECT_DOUBLE_EQ(find_throughput(lossy, 64, relaxed).max_load_fraction, 1.0);
}

TEST(Rfc2544, SweepCoversAllSizes) {
  const auto sizes = rfc2544_frame_sizes();
  const auto pts = throughput_sweep(capacity_dut(1.0), sizes);
  ASSERT_EQ(pts.size(), sizes.size());
  EXPECT_EQ(pts.front().frame_size, 64u);
  EXPECT_EQ(pts.back().frame_size, 1518u);
  // Mpps decreases with frame size; Gb/s constant at wire rate.
  EXPECT_GT(pts.front().mpps, pts.back().mpps);
  EXPECT_NEAR(pts.front().gbps, pts.back().gbps, 1e-6);
}

TEST(Rfc2544, LossRateSweepMonotoneForQueueDut) {
  // A DUT with 80% capacity: loss grows with offered load above that.
  const auto ladder = loss_rate_sweep(capacity_dut(0.8), 256, 1.0, 0.2);
  ASSERT_EQ(ladder.size(), 5u);
  EXPECT_NEAR(ladder[0].load_fraction, 1.0, 1e-9);
  EXPECT_NEAR(ladder[0].loss_fraction, 0.2, 0.01);
  EXPECT_NEAR(ladder[1].loss_fraction, 0.0, 0.01);  // 0.8 load: no loss
}

TEST(Rfc2544, BackToBackFindsBufferLimit) {
  // Fake DUT: forwards bursts up to 1000 frames, then tail-drops.
  const auto dut = [](std::size_t burst, std::size_t) {
    TrialStats s;
    s.tx_frames = burst;
    s.rx_frames = std::min<std::uint64_t>(burst, 1000);
    return s;
  };
  const auto pt = find_back_to_back(dut, 64, 1 << 14);
  EXPECT_EQ(pt.max_burst, 1000u);
  EXPECT_LE(pt.trials, 16u);
}

TEST(Rfc2544, BackToBackUnlimitedDut) {
  const auto perfect = [](std::size_t burst, std::size_t) {
    TrialStats s;
    s.tx_frames = burst;
    s.rx_frames = burst;
    return s;
  };
  const auto pt = find_back_to_back(perfect, 64, 4096);
  EXPECT_EQ(pt.max_burst, 4096u);
  EXPECT_EQ(pt.trials, 1u);
}

TEST(Rfc2544, BackToBackDeadDut) {
  const auto dead = [](std::size_t burst, std::size_t) {
    TrialStats s;
    s.tx_frames = burst;
    s.rx_frames = 0;
    return s;
  };
  EXPECT_EQ(find_back_to_back(dead, 64, 1024).max_burst, 0u);
}

TEST(Rfc2544, TrialCountBounded) {
  ThroughputSearchConfig cfg;
  cfg.resolution = 0.001;
  const auto pt = find_throughput(capacity_dut(0.5), 64, cfg);
  // log2((1.0-0.02)/0.001) ≈ 10 trials, plus the ceiling probe.
  EXPECT_LE(pt.trials, 12u);
}

}  // namespace
}  // namespace osnt::core
