// Hardware models: MAC serialization timing, FIFO accounting, DMA
// loss-limits, port cabling.
#include <gtest/gtest.h>

#include "osnt/hw/dma.hpp"
#include "osnt/hw/fifo.hpp"
#include "osnt/hw/port.hpp"
#include "osnt/net/builder.hpp"

namespace osnt::hw {
namespace {

net::Packet frame(std::size_t size) {
  net::PacketBuilder b;
  return b.eth(net::MacAddr::from_index(1), net::MacAddr::from_index(2))
      .ipv4(net::Ipv4Addr::of(10, 0, 0, 1), net::Ipv4Addr::of(10, 0, 1, 1),
            net::ipproto::kUdp)
      .udp(1, 2)
      .pad_to_frame(size)
      .build();
}

// ------------------------------------------------------------------ TxMac

TEST(TxMac, AirTimeFor64ByteFrame) {
  sim::Engine e;
  TxMac mac{e};
  // 64 B frame occupies 84 B on the line = 672 bits = 67.2 ns at 10G.
  EXPECT_EQ(mac.frame_air_time(frame(64)), 67'200);
}

TEST(TxMac, BackToBackFramesSerialize) {
  sim::Engine e;
  TxMac mac{e};
  const auto s1 = mac.transmit(frame(64));
  const auto s2 = mac.transmit(frame(64));
  ASSERT_TRUE(s1 && s2);
  EXPECT_EQ(*s1, 0);
  EXPECT_EQ(*s2, 67'200);  // second waits for the wire
  EXPECT_EQ(mac.frames_sent(), 2u);
  EXPECT_EQ(mac.bytes_sent(), 128u);
}

TEST(TxMac, QueueLimitDropsWhenSaturated) {
  sim::Engine e;
  TxMacConfig cfg;
  cfg.queue_limit_bytes = 200;  // fits ~3 64B frames of backlog
  TxMac mac{e, cfg};
  int accepted = 0;
  for (int i = 0; i < 10; ++i) {
    if (mac.transmit(frame(64))) ++accepted;
  }
  EXPECT_LT(accepted, 10);
  EXPECT_EQ(mac.drops(), 10u - static_cast<unsigned>(accepted));
}

TEST(TxMac, BusyTimeTracksUtilization) {
  sim::Engine e;
  TxMac mac{e};
  (void)mac.transmit(frame(1518));
  EXPECT_EQ(mac.busy_time(), mac.frame_air_time(frame(1518)));
}

TEST(TxMac, SlowerLinkTakesLonger) {
  sim::Engine e;
  TxMacConfig cfg;
  cfg.gbps = 1.0;
  TxMac slow{e, cfg};
  TxMac fast{e};
  EXPECT_EQ(slow.frame_air_time(frame(64)), 10 * fast.frame_air_time(frame(64)));
}

// ----------------------------------------------------------------- RxMac

TEST(RxMac, CountsAndDelivers) {
  sim::Engine e;
  RxMac mac{e};
  int delivered = 0;
  Picos seen_first = -1;
  mac.set_handler([&](net::Packet, Picos first, Picos) {
    ++delivered;
    seen_first = first;
  });
  mac.on_frame(frame(64), 100, 200);
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(seen_first, 100);
  EXPECT_EQ(mac.frames_received(), 1u);
  EXPECT_EQ(mac.bytes_received(), 64u);
}

TEST(RxMac, RejectsRunts) {
  sim::Engine e;
  RxMac mac{e};
  int delivered = 0;
  mac.set_handler([&](net::Packet, Picos, Picos) { ++delivered; });
  net::Packet runt;
  runt.data.assign(40, 0);  // wire 44 < 64
  mac.on_frame(std::move(runt), 0, 1);
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(mac.runts(), 1u);
}

TEST(RxMac, RejectsGiantsUnlessConfigured) {
  sim::Engine e;
  RxMac strict{e};
  RxMacConfig cfg;
  cfg.accept_oversize = true;
  RxMac jumbo{e, cfg};
  int strict_count = 0, jumbo_count = 0;
  strict.set_handler([&](net::Packet, Picos, Picos) { ++strict_count; });
  jumbo.set_handler([&](net::Packet, Picos, Picos) { ++jumbo_count; });
  net::Packet giant;
  giant.data.assign(3000, 0);
  strict.on_frame(net::Packet{giant}, 0, 1);
  jumbo.on_frame(std::move(giant), 0, 1);
  EXPECT_EQ(strict_count, 0);
  EXPECT_EQ(strict.giants(), 1u);
  EXPECT_EQ(jumbo_count, 1);
}

// ------------------------------------------------------------------ FIFO

TEST(PacketFifo, FifoOrder) {
  PacketFifo f;
  net::Packet a = frame(64);
  a.id = 1;
  net::Packet b = frame(64);
  b.id = 2;
  EXPECT_TRUE(f.push(std::move(a)));
  EXPECT_TRUE(f.push(std::move(b)));
  EXPECT_EQ(f.pop()->id, 1u);
  EXPECT_EQ(f.pop()->id, 2u);
  EXPECT_FALSE(f.pop());
}

TEST(PacketFifo, ByteAccounting) {
  PacketFifo f;
  f.push(frame(100));
  f.push(frame(200));
  EXPECT_EQ(f.bytes(), 300u);
  EXPECT_EQ(f.packets(), 2u);
  (void)f.pop();
  EXPECT_EQ(f.bytes(), 200u);
}

TEST(PacketFifo, TailDropOnByteLimit) {
  PacketFifoConfig cfg;
  cfg.max_bytes = 150;
  PacketFifo f{cfg};
  EXPECT_TRUE(f.push(frame(100)));
  EXPECT_FALSE(f.push(frame(100)));
  EXPECT_EQ(f.drops(), 1u);
  EXPECT_EQ(f.dropped_bytes(), 100u);
}

TEST(PacketFifo, PacketLimit) {
  PacketFifoConfig cfg;
  cfg.max_bytes = 0;
  cfg.max_packets = 2;
  PacketFifo f{cfg};
  EXPECT_TRUE(f.push(frame(64)));
  EXPECT_TRUE(f.push(frame(64)));
  EXPECT_FALSE(f.push(frame(64)));
}

TEST(PacketFifo, PeakBytesHighWater) {
  PacketFifo f;
  f.push(frame(500));
  f.push(frame(500));
  (void)f.pop();
  (void)f.pop();
  EXPECT_EQ(f.peak_bytes(), 1000u);
  EXPECT_EQ(f.bytes(), 0u);
}

// ------------------------------------------------------------------- DMA

TEST(Dma, DeliversWithBandwidthDelay) {
  sim::Engine e;
  DmaConfig cfg;
  cfg.gbps = 8.0;
  cfg.per_record_overhead_bytes = 0;
  DmaEngine dma{e, cfg};
  Picos delivered_at = -1;
  dma.set_handler([&](DmaRecord) { delivered_at = e.now(); });
  DmaRecord rec;
  rec.payload.assign(1000, 0);  // 8000 bits at 8 Gb/s = 1 µs
  EXPECT_TRUE(dma.enqueue(std::move(rec)));
  e.run();
  EXPECT_EQ(delivered_at, kPicosPerMicro);
  EXPECT_EQ(dma.records_delivered(), 1u);
}

TEST(Dma, RingFullDrops) {
  sim::Engine e;
  DmaConfig cfg;
  cfg.ring_entries = 4;
  DmaEngine dma{e, cfg};
  dma.set_handler([](DmaRecord) {});
  for (int i = 0; i < 10; ++i) {
    DmaRecord rec;
    rec.payload.assign(100, 0);
    dma.enqueue(std::move(rec));
  }
  EXPECT_EQ(dma.drops_ring_full(), 6u);
  e.run();
  EXPECT_EQ(dma.records_delivered(), 4u);
}

TEST(Dma, RingDrainsOverTime) {
  sim::Engine e;
  DmaConfig cfg;
  cfg.ring_entries = 2;
  DmaEngine dma{e, cfg};
  dma.set_handler([](DmaRecord) {});
  DmaRecord r1;
  r1.payload.assign(100, 0);
  DmaRecord r2 = r1, r3 = r1;
  EXPECT_TRUE(dma.enqueue(std::move(r1)));
  EXPECT_TRUE(dma.enqueue(std::move(r2)));
  EXPECT_FALSE(dma.enqueue(std::move(r3)));  // full now
  e.run();                                   // drain
  DmaRecord r4;
  r4.payload.assign(100, 0);
  EXPECT_TRUE(dma.enqueue(std::move(r4)));  // space again
}

TEST(Dma, MetadataRoundTrips) {
  sim::Engine e;
  DmaEngine dma{e};
  DmaRecord got;
  dma.set_handler([&](DmaRecord r) { got = std::move(r); });
  DmaRecord rec;
  rec.payload = {1, 2, 3};
  rec.meta_a = 0xAAAA;
  rec.meta_b = 0xBBBB;
  rec.meta_c = 3;
  dma.enqueue(std::move(rec));
  e.run();
  EXPECT_EQ(got.meta_a, 0xAAAAu);
  EXPECT_EQ(got.meta_b, 0xBBBBu);
  EXPECT_EQ(got.meta_c, 3u);
  EXPECT_EQ(got.payload.size(), 3u);
}

// ------------------------------------------------------------------ Port

TEST(EthPort, CabledDeliveryEndToEnd) {
  sim::Engine e;
  EthPort a{e}, b{e};
  connect(a, b);
  int received = 0;
  Picos first_bit = -1, last_bit = -1;
  b.rx().set_handler([&](net::Packet, Picos f, Picos l) {
    ++received;
    first_bit = f;
    last_bit = l;
  });
  (void)a.tx().transmit(frame(64));
  e.run();
  EXPECT_EQ(received, 1);
  // first bit = propagation (9.8 ns for 2 m); last = first + air time.
  EXPECT_EQ(first_bit, sim::fiber_delay(2.0));
  EXPECT_EQ(last_bit - first_bit, a.tx().frame_air_time(frame(64)));
}

TEST(EthPort, UncabledIsDarkFiber) {
  sim::Engine e;
  EthPort a{e};
  (void)a.tx().transmit(frame(64));
  e.run();
  EXPECT_EQ(a.out_link().frames_lost_dark(), 1u);
  EXPECT_FALSE(a.cabled());
}

TEST(EthPort, BidirectionalTraffic) {
  sim::Engine e;
  EthPort a{e}, b{e};
  connect(a, b);
  int at_a = 0, at_b = 0;
  a.rx().set_handler([&](net::Packet, Picos, Picos) { ++at_a; });
  b.rx().set_handler([&](net::Packet, Picos, Picos) { ++at_b; });
  (void)a.tx().transmit(frame(64));
  (void)b.tx().transmit(frame(128));
  e.run();
  EXPECT_EQ(at_a, 1);
  EXPECT_EQ(at_b, 1);
}

}  // namespace
}  // namespace osnt::hw
