// OsntDevice public API: loopback generate→capture, run_capture_test.
#include <gtest/gtest.h>

#include "osnt/core/device.hpp"
#include "osnt/core/measure.hpp"

namespace osnt::core {
namespace {

TEST(OsntDevice, FourPortsByDefault) {
  sim::Engine eng;
  OsntDevice dev{eng};
  EXPECT_EQ(dev.num_ports(), 4u);
}

TEST(OsntDevice, RejectsSillyPortCounts) {
  sim::Engine eng;
  DeviceConfig cfg;
  cfg.num_ports = 0;
  EXPECT_THROW(OsntDevice(eng, cfg), std::invalid_argument);
  cfg.num_ports = 64;
  EXPECT_THROW(OsntDevice(eng, cfg), std::invalid_argument);
}

TEST(OsntDevice, LoopbackLatencyMeasurement) {
  sim::Engine eng;
  OsntDevice dev{eng};
  hw::connect(dev.port(0), dev.port(1));  // direct cable

  TrafficSpec spec;
  spec.rate = gen::RateSpec::gbps(1.0);
  spec.frame_size = 256;
  const auto r =
      run_capture_test(eng, dev, 0, 1, spec, 2 * kPicosPerMilli);

  EXPECT_GT(r.tx_frames, 100u);
  EXPECT_EQ(r.rx_frames, r.tx_frames);
  EXPECT_EQ(r.loss_fraction(), 0.0);
  ASSERT_GT(r.latency_ns.count(), 0u);
  // One-way latency over a bare cable: propagation (≈9.8 ns) + the
  // RX stamp is at first bit, TX stamp just before the MAC: expect tens
  // of ns, far below a microsecond.
  EXPECT_LT(r.latency_ns.quantile(0.5), 100.0);
  EXPECT_GT(r.latency_ns.quantile(0.5), 0.0);
}

TEST(OsntDevice, JitterNearZeroOnCbrCable) {
  sim::Engine eng;
  OsntDevice dev{eng};
  hw::connect(dev.port(0), dev.port(1));
  TrafficSpec spec;
  spec.rate = gen::RateSpec::gbps(2.0);
  spec.frame_size = 512;
  const auto r = run_capture_test(eng, dev, 0, 1, spec, kPicosPerMilli);
  ASSERT_GT(r.jitter_ns.count(), 10u);
  EXPECT_LT(r.jitter_ns.quantile(0.99), 2 * tstamp::kTickNanos + 0.1);
}

TEST(OsntDevice, OfferedRateMatchesSpec) {
  sim::Engine eng;
  OsntDevice dev{eng};
  hw::connect(dev.port(0), dev.port(1));
  TrafficSpec spec;
  spec.rate = gen::RateSpec::line_rate(0.5);
  spec.frame_size = 1024;
  const auto r = run_capture_test(eng, dev, 0, 1, spec, 2 * kPicosPerMilli);
  EXPECT_NEAR(r.offered_gbps, 5.0, 0.1);
  EXPECT_NEAR(r.delivered_gbps, 5.0, 0.1);
}

TEST(OsntDevice, ConfigureTxReplacesPipeline) {
  sim::Engine eng;
  OsntDevice dev{eng};
  gen::TxConfig cfg;
  cfg.rate = gen::RateSpec::pps(1000);
  auto& tx = dev.configure_tx(2, cfg);
  EXPECT_EQ(&dev.tx(2), &tx);
  EXPECT_FALSE(tx.running());
}

TEST(OsntDevice, SharedDmaAcrossPorts) {
  // Captures from two ports land in the same host buffer with the right
  // port ids — the shared loss-limited path.
  sim::Engine eng;
  OsntDevice dev{eng};
  hw::connect(dev.port(0), dev.port(1));
  hw::connect(dev.port(2), dev.port(3));

  for (std::size_t p : {std::size_t{0}, std::size_t{2}}) {
    TrafficSpec spec;
    spec.rate = gen::RateSpec::pps(100'000);
    spec.frame_count = 10;
    auto& tx = dev.configure_tx(p, gen::TxConfig{});
    tx.set_source(make_source(spec));
    tx.start();
  }
  eng.run();
  EXPECT_EQ(dev.capture().size(), 20u);
  int port1 = 0, port3 = 0;
  for (const auto& rec : dev.capture().records()) {
    if (rec.port == 1) ++port1;
    if (rec.port == 3) ++port3;
  }
  EXPECT_EQ(port1, 10);
  EXPECT_EQ(port3, 10);
}

TEST(Measure, SourceFactories) {
  TrafficSpec spec;
  spec.sizes = TrafficSpec::Sizes::kImix;
  spec.frame_count = 3;
  auto src = make_source(spec);
  ASSERT_TRUE(src);
  int n = 0;
  while (src->next()) ++n;
  EXPECT_EQ(n, 3);

  spec.arrivals = TrafficSpec::Arrivals::kPoisson;
  EXPECT_TRUE(make_gap_model(spec));
  spec.arrivals = TrafficSpec::Arrivals::kBurst;
  EXPECT_TRUE(make_gap_model(spec));
}

}  // namespace
}  // namespace osnt::core
