// Parameterized configuration sweeps: properties that must hold across
// the whole operating envelope, not just at hand-picked points.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "osnt/core/device.hpp"
#include "osnt/core/measure.hpp"
#include "osnt/dut/legacy_switch.hpp"
#include "osnt/net/builder.hpp"
#include "osnt/tstamp/clock.hpp"

namespace osnt {
namespace {

// ---------------------------------------------- generator rate accuracy

class RateAccuracy
    : public ::testing::TestWithParam<std::tuple<double, std::size_t>> {};

TEST_P(RateAccuracy, AchievedMatchesRequested) {
  const auto [fraction, frame_size] = GetParam();
  sim::Engine eng;
  core::OsntDevice osnt{eng};
  hw::connect(osnt.port(0), osnt.port(1));
  core::TrafficSpec spec;
  spec.rate = gen::RateSpec::line_rate(fraction);
  spec.frame_size = frame_size;
  const auto r = core::run_capture_test(eng, osnt, 0, 1, spec,
                                        2 * kPicosPerMilli);
  EXPECT_NEAR(r.offered_gbps, 10.0 * fraction, 10.0 * fraction * 0.02);
  EXPECT_EQ(r.loss_fraction(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, RateAccuracy,
    ::testing::Combine(::testing::Values(0.1, 0.5, 0.9, 1.0),
                       ::testing::Values(std::size_t{64}, std::size_t{512},
                                         std::size_t{1518})));

// -------------------------------------------------- clock discipline

class ClockDiscipline : public ::testing::TestWithParam<double> {};

TEST_P(ClockDiscipline, SubMicrosecondForAnyPpm) {
  const double ppm = GetParam();
  tstamp::GpsModel gps;
  tstamp::ClockConfig cfg;
  cfg.osc.ppm_offset = ppm;
  tstamp::DisciplinedClock clk{gps, cfg};
  (void)clk.now(10 * kPicosPerSec);
  double worst = 0;
  for (int i = 0; i < 40; ++i) {
    const Picos t = 10 * kPicosPerSec + i * 250 * kPicosPerMilli;
    worst = std::max(worst, std::abs(clk.error_nanos(t)));
  }
  EXPECT_LT(worst, 1000.0) << "ppm=" << ppm;
}

INSTANTIATE_TEST_SUITE_P(PpmGrid, ClockDiscipline,
                         ::testing::Values(-100.0, -20.0, -1.0, 0.0, 1.0,
                                           20.0, 100.0));

// ------------------------------------------- DMA conservation law

class DmaConservation : public ::testing::TestWithParam<double> {};

TEST_P(DmaConservation, CapturedPlusDroppedEqualsEligible) {
  const double dma_gbps = GetParam();
  sim::Engine eng;
  core::DeviceConfig dcfg;
  dcfg.dma.gbps = dma_gbps;
  dcfg.dma.ring_entries = 64;
  core::OsntDevice osnt{eng, dcfg};
  hw::connect(osnt.port(0), osnt.port(1));
  core::TrafficSpec spec;
  spec.rate = gen::RateSpec::gbps(6.0);
  spec.frame_size = 512;
  const auto r = core::run_capture_test(eng, osnt, 0, 1, spec,
                                        3 * kPicosPerMilli);
  EXPECT_EQ(r.captured + r.dma_drops, r.rx_frames);
  if (dma_gbps < 4.0) {
    EXPECT_GT(r.dma_drops, 0u);
  }
  if (dma_gbps > 8.0) {
    EXPECT_EQ(r.dma_drops, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(DmaGrid, DmaConservation,
                         ::testing::Values(0.5, 2.0, 8.0, 32.0));

// -------------------------------------- DUT latency measurement fidelity

class DutLatency : public ::testing::TestWithParam<double> {};

TEST_P(DutLatency, MeasuredTracksConfigured) {
  const double pipeline_us = GetParam();
  sim::Engine eng;
  core::OsntDevice osnt{eng};
  dut::LegacySwitchConfig cfg;
  cfg.pipeline_latency = from_micros(pipeline_us);
  cfg.latency_jitter_ns = 0;
  dut::LegacySwitch sw{eng, cfg};
  hw::connect(osnt.port(0), sw.port(0));
  hw::connect(osnt.port(1), sw.port(1));
  {
    net::PacketBuilder b;
    (void)osnt.port(1).tx().transmit(
        b.eth(net::MacAddr::from_index(2), net::MacAddr::from_index(1))
            .ipv4(net::Ipv4Addr::of(10, 0, 1, 1), net::Ipv4Addr::of(10, 0, 0, 1),
                  net::ipproto::kUdp)
            .udp(5001, 1024)
            .build());
    eng.run();
  }
  core::TrafficSpec spec;
  spec.rate = gen::RateSpec::line_rate(0.02);
  spec.frame_size = 512;
  const auto r = core::run_capture_test(eng, osnt, 0, 1, spec,
                                        4 * kPicosPerMilli);
  ASSERT_GT(r.latency_ns.count(), 10u);
  // Fixed terms: TX serialization of 532 line bytes (~425.6 ns) + two
  // 2 m cables (~19.6 ns).
  const double fixed = 425.6 + 2 * 9.8;
  EXPECT_NEAR(r.latency_ns.quantile(0.5), pipeline_us * 1000.0 + fixed, 15.0);
}

INSTANTIATE_TEST_SUITE_P(PipelineGrid, DutLatency,
                         ::testing::Values(0.5, 2.0, 10.0, 50.0));

// ------------------------------------------ port-count sweep for device

class DeviceSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(DeviceSizes, AllPortsIndependent) {
  const std::size_t ports = GetParam();
  sim::Engine eng;
  core::DeviceConfig cfg;
  cfg.num_ports = ports;
  core::OsntDevice dev{eng, cfg};
  EXPECT_EQ(dev.num_ports(), ports);
  for (std::size_t i = 0; i + 1 < ports; i += 2)
    hw::connect(dev.port(i), dev.port(i + 1));
  for (std::size_t i = 0; i + 1 < ports; i += 2) {
    gen::TxConfig txc;
    txc.rate = gen::RateSpec::pps(100'000);
    auto& tx = dev.configure_tx(i, txc);
    core::TrafficSpec spec;
    spec.frame_count = 50;
    spec.seed = i + 1;
    tx.set_source(core::make_source(spec));
    tx.start();
  }
  eng.run();
  for (std::size_t i = 0; i + 1 < ports; i += 2)
    EXPECT_EQ(dev.rx(i + 1).seen(), 50u) << "pair " << i;
}

INSTANTIATE_TEST_SUITE_P(PortGrid, DeviceSizes,
                         ::testing::Values(std::size_t{2}, std::size_t{4},
                                           std::size_t{8}, std::size_t{16}));

}  // namespace
}  // namespace osnt
