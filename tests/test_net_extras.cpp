// TCP options, trace synthesis, device self-test, jumbo frames.
#include <gtest/gtest.h>

#include "osnt/core/self_test.hpp"
#include "osnt/gen/synth.hpp"
#include "osnt/gen/template_gen.hpp"
#include "osnt/net/builder.hpp"
#include "osnt/net/checksum.hpp"
#include "osnt/net/parser.hpp"
#include "osnt/net/tcp_options.hpp"

namespace osnt {
namespace {

using namespace osnt::net;

// ------------------------------------------------------------ tcp options

TEST(TcpOptions, EncodeParseRoundTrip) {
  const std::vector<TcpOption> opts = {
      tcp_option_mss(1460), tcp_option_sack_permitted(),
      tcp_option_window_scale(7), tcp_option_timestamps(0xAABB, 0xCCDD)};
  const Bytes wire = encode_tcp_options(opts);
  EXPECT_EQ(wire.size() % 4, 0u);
  const auto back = parse_tcp_options(ByteSpan{wire.data(), wire.size()});
  ASSERT_TRUE(back);
  EXPECT_EQ(*back, opts);
}

TEST(TcpOptions, TypedAccessors) {
  const std::vector<TcpOption> opts = {tcp_option_mss(1400),
                                       tcp_option_window_scale(3),
                                       tcp_option_timestamps(1, 2)};
  EXPECT_EQ(tcp_mss_of(opts), 1400);
  EXPECT_EQ(tcp_window_scale_of(opts), 3);
  const auto ts = tcp_timestamps_of(opts);
  ASSERT_TRUE(ts);
  EXPECT_EQ(ts->first, 1u);
  EXPECT_EQ(ts->second, 2u);
  EXPECT_FALSE(tcp_mss_of({}));
}

TEST(TcpOptions, ParseHandlesNopAndEnd) {
  // NOP NOP MSS END
  const std::uint8_t raw[] = {1, 1, 2, 4, 0x05, 0xB4, 0};
  const auto opts = parse_tcp_options(ByteSpan{raw, sizeof raw});
  ASSERT_TRUE(opts);
  ASSERT_EQ(opts->size(), 1u);
  EXPECT_EQ(tcp_mss_of(*opts), 1460);
}

TEST(TcpOptions, ParseRejectsMalformed) {
  const std::uint8_t bad_len[] = {2, 1};  // MSS with length 1
  EXPECT_FALSE(parse_tcp_options(ByteSpan{bad_len, 2}));
  const std::uint8_t overrun[] = {2, 10, 0, 0};  // length past buffer
  EXPECT_FALSE(parse_tcp_options(ByteSpan{overrun, 4}));
  const std::uint8_t no_len[] = {2};  // kind with nothing after
  EXPECT_FALSE(parse_tcp_options(ByteSpan{no_len, 1}));
}

TEST(TcpOptions, BuilderProducesParseableSyn) {
  PacketBuilder b;
  const Packet p =
      b.eth(MacAddr::from_index(1), MacAddr::from_index(2))
          .ipv4(Ipv4Addr::of(10, 0, 0, 1), Ipv4Addr::of(10, 0, 0, 2),
                ipproto::kTcp)
          .tcp(40000, 443, 1000, 0, TcpFlags::kSyn)
          .tcp_options({tcp_option_mss(1460), tcp_option_sack_permitted(),
                        tcp_option_window_scale(7)})
          .build();
  const auto parsed = parse_packet(p.bytes());
  ASSERT_TRUE(parsed);
  ASSERT_EQ(parsed->l4, L4Kind::kTcp);
  EXPECT_GT(parsed->tcp.header_len(), TcpHeader::kMinSize);
  const ByteSpan area{
      p.data.data() + parsed->l4_offset + TcpHeader::kMinSize,
      parsed->tcp.header_len() - TcpHeader::kMinSize};
  const auto opts = parse_tcp_options(area);
  ASSERT_TRUE(opts);
  EXPECT_EQ(tcp_mss_of(*opts), 1460);
  EXPECT_EQ(tcp_window_scale_of(*opts), 7);
  // L4 checksum still validates over the extended header.
  Bytes l4(p.data.begin() + static_cast<std::ptrdiff_t>(parsed->l4_offset),
           p.data.end());
  const std::uint16_t stored = load_be16(l4.data() + 16);
  store_be16(l4.data() + 16, 0);
  EXPECT_EQ(stored,
            l4_checksum_v4(parsed->ipv4.src, parsed->ipv4.dst, ipproto::kTcp,
                           ByteSpan{l4.data(), l4.size()}));
}

TEST(TcpOptions, BuilderRejectsMisuse) {
  PacketBuilder b;
  EXPECT_THROW(b.tcp_options({tcp_option_mss(1)}), std::logic_error);
  PacketBuilder b2;
  b2.eth(MacAddr::from_index(1), MacAddr::from_index(2))
      .ipv4(Ipv4Addr::of(1, 1, 1, 1), Ipv4Addr::of(2, 2, 2, 2), ipproto::kTcp)
      .tcp(1, 2);
  std::vector<TcpOption> too_many(12, tcp_option_mss(1));
  EXPECT_THROW(b2.tcp_options(too_many), std::invalid_argument);
}

// --------------------------------------------------------- trace synth

TEST(Synth, ProducesRequestedFramesAndTiming) {
  gen::TemplateConfig tc;
  gen::TemplateSource src{tc, std::make_unique<gen::FixedSize>(256)};
  gen::ConstantGap gaps;
  gen::SynthSpec spec;
  spec.frames = 100;
  spec.mean_gap_ns = 500;
  spec.start_ns = 10'000;
  const auto trace = gen::synthesize_trace(src, gaps, spec);
  ASSERT_EQ(trace.size(), 100u);
  EXPECT_EQ(trace[0].ts_nanos, 10'000u);
  EXPECT_EQ(trace[1].ts_nanos - trace[0].ts_nanos, 500u);
  EXPECT_EQ(trace.back().ts_nanos, 10'000u + 99u * 500u);
}

TEST(Synth, ThrowsWhenSourceRunsDry) {
  gen::TemplateConfig tc;
  tc.count = 5;
  gen::TemplateSource src{tc, std::make_unique<gen::FixedSize>(64)};
  gen::ConstantGap gaps;
  gen::SynthSpec spec;
  spec.frames = 10;
  EXPECT_THROW((void)gen::synthesize_trace(src, gaps, spec),
               std::invalid_argument);
}

TEST(Synth, FileRoundTrip) {
  const std::string path =
      "/tmp/osnt_synth_" + std::to_string(::getpid()) + ".pcap";
  gen::TemplateConfig tc;
  gen::TemplateSource src{tc, std::make_unique<gen::ImixSize>()};
  gen::PoissonGap gaps;
  gen::SynthSpec spec;
  spec.frames = 50;
  EXPECT_EQ(gen::synthesize_trace_file(path, src, gaps, spec), 50u);
  EXPECT_EQ(net::PcapReader::read_all(path).size(), 50u);
  std::remove(path.c_str());
}

// ----------------------------------------------------------- self test

TEST(SelfTest, HealthyCardPasses) {
  sim::Engine eng;
  core::OsntDevice dev{eng};
  const auto r = core::run_self_test(eng, dev);
  EXPECT_TRUE(r.passed) << (r.failures.empty() ? "" : r.failures[0]);
  EXPECT_TRUE(r.failures.empty());
}

TEST(SelfTest, DetectsBrokenWire) {
  sim::Engine eng;
  core::OsntDevice dev{eng};
  // Sabotage: corrupt everything on port 0's fiber.
  dev.port(0).out_link().set_bit_error_rate(1.0);
  const auto r = core::run_self_test(eng, dev);
  EXPECT_FALSE(r.passed);
  EXPECT_FALSE(r.failures.empty());
}

TEST(SelfTest, RefusesCabledCard) {
  sim::Engine eng;
  core::OsntDevice dev{eng};
  hw::connect(dev.port(0), dev.port(1));
  const auto r = core::run_self_test(eng, dev);
  EXPECT_FALSE(r.passed);
}

// -------------------------------------------------------------- jumbo

TEST(Jumbo, EndToEndWithOversizeEnabled) {
  sim::Engine eng;
  core::DeviceConfig cfg;
  cfg.port.rx.accept_oversize = true;
  core::OsntDevice dev{eng, cfg};
  hw::connect(dev.port(0), dev.port(1));
  net::PacketBuilder b;
  auto jumbo = b.eth(MacAddr::from_index(1), MacAddr::from_index(2))
                   .ipv4(Ipv4Addr::of(10, 0, 0, 1), Ipv4Addr::of(10, 0, 1, 1),
                         ipproto::kUdp)
                   .udp(1024, 5001)
                   .pad_to_frame(9000)
                   .build();
  (void)dev.port(0).tx().transmit(std::move(jumbo));
  eng.run();
  EXPECT_EQ(dev.rx(1).seen(), 1u);
  ASSERT_EQ(dev.capture().size(), 1u);
  EXPECT_EQ(dev.capture().records()[0].orig_len, 8996u);
}

TEST(Jumbo, DefaultMacRejects) {
  sim::Engine eng;
  core::OsntDevice dev{eng};
  hw::connect(dev.port(0), dev.port(1));
  net::PacketBuilder b;
  auto jumbo = b.eth(MacAddr::from_index(1), MacAddr::from_index(2))
                   .ipv4(Ipv4Addr::of(10, 0, 0, 1), Ipv4Addr::of(10, 0, 1, 1),
                         ipproto::kUdp)
                   .udp(1024, 5001)
                   .pad_to_frame(9000)
                   .build();
  (void)dev.port(0).tx().transmit(std::move(jumbo));
  eng.run();
  EXPECT_EQ(dev.rx(1).seen(), 0u);
  EXPECT_EQ(dev.port(1).rx().giants(), 1u);
}

}  // namespace
}  // namespace osnt
