// ofp_match algebra: packet matching, rule covering, prefix wildcards,
// wire layout, plus a property sweep (cover ⇒ matches-subset).
#include <gtest/gtest.h>

#include "osnt/common/random.hpp"
#include "osnt/net/builder.hpp"
#include "osnt/openflow/match.hpp"

namespace osnt::openflow {
namespace {

OfMatch concrete_udp(std::uint32_t src, std::uint32_t dst, std::uint16_t sp,
                     std::uint16_t dp) {
  net::PacketBuilder b;
  const auto pkt =
      b.eth(net::MacAddr::from_index(1), net::MacAddr::from_index(2))
          .ipv4(net::Ipv4Addr{src}, net::Ipv4Addr{dst}, net::ipproto::kUdp)
          .udp(sp, dp)
          .build();
  const auto parsed = net::parse_packet(pkt.bytes());
  EXPECT_TRUE(parsed);
  return OfMatch::from_packet(*parsed, 1);
}

TEST(OfMatch, AnyMatchesEverything) {
  EXPECT_TRUE(OfMatch::any().matches_packet(concrete_udp(1, 2, 3, 4)));
}

TEST(OfMatch, FromPacketIsFullyConcrete) {
  const auto c = concrete_udp(0x0A000001, 0x0A000002, 100, 200);
  EXPECT_EQ(c.wildcards, 0u);
  EXPECT_EQ(c.in_port, 1);
  EXPECT_EQ(c.dl_type, 0x0800);
  EXPECT_EQ(c.nw_proto, net::ipproto::kUdp);
  EXPECT_EQ(c.nw_src, 0x0A000001u);
  EXPECT_EQ(c.tp_src, 100);
  EXPECT_EQ(c.tp_dst, 200);
  EXPECT_EQ(c.dl_vlan, 0xFFFF);  // untagged → OFP_VLAN_NONE
}

TEST(OfMatch, Exact5TupleMatchesOnlyItsFlow) {
  const auto rule = OfMatch::exact_5tuple(0x0A000001, 0x0A000002, 17, 100, 200);
  EXPECT_TRUE(rule.matches_packet(concrete_udp(0x0A000001, 0x0A000002, 100, 200)));
  EXPECT_FALSE(rule.matches_packet(concrete_udp(0x0A000001, 0x0A000002, 100, 201)));
  EXPECT_FALSE(rule.matches_packet(concrete_udp(0x0A000001, 0x0A000003, 100, 200)));
}

TEST(OfMatch, Exact5TupleIgnoresMacsAndPort) {
  auto rule = OfMatch::exact_5tuple(1, 2, 17, 3, 4);
  auto pkt = concrete_udp(1, 2, 3, 4);
  pkt.in_port = 99;
  pkt.dl_src = net::MacAddr::from_index(77);
  EXPECT_TRUE(rule.matches_packet(pkt));
}

TEST(OfMatch, PrefixWildcards) {
  OfMatch m = OfMatch::any();
  m.wildcards &= ~wc::kDlType;
  m.dl_type = 0x0800;
  m.set_nw_dst_prefix((10u << 24) | (1u << 16), 16);  // 10.1/16
  EXPECT_EQ(m.nw_dst_wild_bits(), 16u);
  EXPECT_TRUE(m.matches_packet(concrete_udp(1, (10u << 24) | (1u << 16) | 55, 1, 1)));
  EXPECT_FALSE(m.matches_packet(concrete_udp(1, (10u << 24) | (2u << 16) | 55, 1, 1)));
}

TEST(OfMatch, PrefixFullWildIsDontCare) {
  OfMatch m = OfMatch::any();
  m.set_nw_src_prefix(0xDEADBEEF, 0);  // /0 = anything
  EXPECT_TRUE(m.matches_packet(concrete_udp(1, 2, 3, 4)));
}

TEST(OfMatch, CoversReflexive) {
  const auto r = OfMatch::exact_5tuple(1, 2, 17, 3, 4);
  EXPECT_TRUE(r.covers(r));
  EXPECT_TRUE(OfMatch::any().covers(r));
  EXPECT_FALSE(r.covers(OfMatch::any()));
}

TEST(OfMatch, CoversRespectsPrefixLengths) {
  OfMatch wide = OfMatch::any();
  wide.set_nw_dst_prefix(10u << 24, 8);  // 10/8
  OfMatch narrow = OfMatch::any();
  narrow.set_nw_dst_prefix((10u << 24) | (1 << 16), 16);  // 10.1/16
  EXPECT_TRUE(wide.covers(narrow));
  EXPECT_FALSE(narrow.covers(wide));
  OfMatch other = OfMatch::any();
  other.set_nw_dst_prefix(11u << 24, 8);  // 11/8
  EXPECT_FALSE(wide.covers(other));
}

TEST(OfMatch, WireRoundTrip) {
  OfMatch m = OfMatch::exact_5tuple(0x01020304, 0x05060708, 6, 1234, 80);
  m.dl_src = net::MacAddr::from_index(1);
  m.dl_vlan = 55;
  m.nw_tos = 0xB8;
  std::uint8_t buf[OfMatch::kWireSize];
  m.write(buf);
  const auto back = OfMatch::read(buf);
  ASSERT_TRUE(back);
  EXPECT_EQ(*back, m);
}

TEST(OfMatch, ReadRejectsShort) {
  std::uint8_t buf[OfMatch::kWireSize - 1] = {};
  EXPECT_FALSE(OfMatch::read(ByteSpan{buf, sizeof buf}));
}

// Property: if A covers B (both as rules) then any packet matching B also
// matches A. Randomized over field subsets.
TEST(OfMatchProperty, CoverImpliesMatchSubset) {
  osnt::Rng rng{99};
  int cover_pairs = 0;
  for (int trial = 0; trial < 3000; ++trial) {
    // Random concrete packet from a small universe (to get collisions).
    const std::uint32_t src = 1 + static_cast<std::uint32_t>(rng.uniform_int(0, 3));
    const std::uint32_t dst = 1 + static_cast<std::uint32_t>(rng.uniform_int(0, 3));
    const auto sp = static_cast<std::uint16_t>(rng.uniform_int(1, 3));
    const auto dp = static_cast<std::uint16_t>(rng.uniform_int(1, 3));
    const OfMatch pkt = concrete_udp(src, dst, sp, dp);

    auto random_rule = [&] {
      OfMatch r = OfMatch::any();
      if (rng.chance(0.5)) {
        r.wildcards &= ~wc::kDlType;
        r.dl_type = 0x0800;
      }
      if (rng.chance(0.5)) {
        r.wildcards &= ~wc::kNwProto;
        r.nw_proto = 17;
      }
      if (rng.chance(0.5))
        r.set_nw_src_prefix(1 + static_cast<std::uint32_t>(rng.uniform_int(0, 3)), 32);
      if (rng.chance(0.5)) {
        r.wildcards &= ~wc::kTpDst;
        r.tp_dst = static_cast<std::uint16_t>(rng.uniform_int(1, 3));
      }
      return r;
    };
    const OfMatch a = random_rule();
    const OfMatch b = random_rule();
    if (a.covers(b)) {
      ++cover_pairs;
      if (b.matches_packet(pkt)) {
        EXPECT_TRUE(a.matches_packet(pkt))
            << "cover violated at trial " << trial;
      }
    }
  }
  EXPECT_GT(cover_pairs, 50);  // the property was actually exercised
}

}  // namespace
}  // namespace osnt::openflow
