// OpenFlow 1.0 wire format: every message type round-trips through
// encode→decode; layout constants match the spec.
#include <gtest/gtest.h>

#include "osnt/openflow/messages.hpp"

namespace osnt::openflow {
namespace {

template <typename T>
T round_trip(const T& msg, std::uint32_t xid = 7) {
  const Bytes wire = encode(msg, xid);
  const auto d = decode(ByteSpan{wire.data(), wire.size()});
  EXPECT_TRUE(d) << "decode failed";
  EXPECT_EQ(d->xid, xid);
  EXPECT_EQ(d->wire_size, wire.size());
  EXPECT_TRUE(std::holds_alternative<T>(d->msg));
  return std::get<T>(d->msg);
}

TEST(OfWire, HeaderLayout) {
  const Bytes wire = encode(Hello{}, 0x11223344);
  ASSERT_EQ(wire.size(), kHeaderSize);
  EXPECT_EQ(wire[0], kOfVersion);
  EXPECT_EQ(wire[1], 0);  // OFPT_HELLO
  EXPECT_EQ(load_be16(wire.data() + 2), 8);
  EXPECT_EQ(load_be32(wire.data() + 4), 0x11223344u);
}

TEST(OfWire, Hello) { round_trip(Hello{}); }

TEST(OfWire, EchoCarriesPayload) {
  EchoRequest req;
  req.payload = {1, 2, 3, 4, 5};
  EXPECT_EQ(round_trip(req).payload, req.payload);
  EchoReply rep;
  rep.payload = {9, 8};
  EXPECT_EQ(round_trip(rep).payload, rep.payload);
}

TEST(OfWire, FeaturesReply) {
  FeaturesReply fr;
  fr.datapath_id = 0xAABBCCDDEEFF0011ull;
  fr.n_buffers = 64;
  fr.n_tables = 2;
  fr.capabilities = 0xC7;
  fr.n_ports = 4;
  const auto back = round_trip(fr);
  EXPECT_EQ(back.datapath_id, fr.datapath_id);
  EXPECT_EQ(back.n_buffers, 64u);
  EXPECT_EQ(back.n_tables, 2);
  EXPECT_EQ(back.capabilities, 0xC7u);
  EXPECT_EQ(back.n_ports, 4);
  // 8 header + 24 fixed + 4*48 ports.
  EXPECT_EQ(encode(fr, 1).size(), 8u + 24u + 4u * 48u);
}

TEST(OfWire, FlowModFixedPart) {
  FlowMod fm;
  fm.match = OfMatch::exact_5tuple(0x0A000001, 0x0A000002, 17, 1000, 2000);
  fm.cookie = 0x1234;
  fm.command = FlowModCommand::kAdd;
  fm.idle_timeout = 30;
  fm.hard_timeout = 60;
  fm.priority = 0x8123;
  fm.out_port = ofpp::kNone;
  fm.flags = off::kSendFlowRem;
  fm.actions = {ActionOutput{3, 0xFFFF}};
  const Bytes wire = encode(fm, 1);
  EXPECT_EQ(wire.size(), 72u + 8u);  // ofp_flow_mod + one action
  const auto back = round_trip(fm);
  EXPECT_EQ(back.match, fm.match);
  EXPECT_EQ(back.cookie, 0x1234u);
  EXPECT_EQ(back.command, FlowModCommand::kAdd);
  EXPECT_EQ(back.idle_timeout, 30);
  EXPECT_EQ(back.priority, 0x8123);
  EXPECT_EQ(back.flags, off::kSendFlowRem);
  ASSERT_EQ(back.actions.size(), 1u);
  EXPECT_EQ(std::get<ActionOutput>(back.actions[0]).port, 3);
}

TEST(OfWire, FlowModMultipleActions) {
  FlowMod fm;
  fm.actions = {ActionSetVlanVid{99}, ActionOutput{2}, ActionStripVlan{}};
  const auto back = round_trip(fm);
  ASSERT_EQ(back.actions.size(), 3u);
  EXPECT_EQ(std::get<ActionSetVlanVid>(back.actions[0]).vlan_vid, 99);
  EXPECT_EQ(std::get<ActionOutput>(back.actions[1]).port, 2);
  EXPECT_TRUE(std::holds_alternative<ActionStripVlan>(back.actions[2]));
}

TEST(OfWire, PacketIn) {
  PacketIn pin;
  pin.buffer_id = 0xFFFFFFFF;
  pin.total_len = 1500;
  pin.in_port = 3;
  pin.reason = PacketInReason::kNoMatch;
  pin.data.assign(100, 0xAB);
  const auto back = round_trip(pin);
  EXPECT_EQ(back.total_len, 1500);
  EXPECT_EQ(back.in_port, 3);
  EXPECT_EQ(back.reason, PacketInReason::kNoMatch);
  EXPECT_EQ(back.data.size(), 100u);
  EXPECT_EQ(back.data[0], 0xAB);
}

TEST(OfWire, PacketOut) {
  PacketOut po;
  po.in_port = ofpp::kNone;
  po.actions = {ActionOutput{1}};
  po.data.assign(64, 0x55);
  const auto back = round_trip(po);
  ASSERT_EQ(back.actions.size(), 1u);
  EXPECT_EQ(back.data.size(), 64u);
}

TEST(OfWire, FlowRemoved) {
  FlowRemoved fr;
  fr.cookie = 0xDEAD;
  fr.priority = 42;
  fr.reason = FlowRemovedReason::kIdleTimeout;
  fr.duration_sec = 10;
  fr.duration_nsec = 500;
  fr.packet_count = 1234;
  fr.byte_count = 567890;
  const Bytes wire = encode(fr, 1);
  EXPECT_EQ(wire.size(), 88u);  // spec: ofp_flow_removed is 88 bytes
  const auto back = round_trip(fr);
  EXPECT_EQ(back.cookie, 0xDEADu);
  EXPECT_EQ(back.reason, FlowRemovedReason::kIdleTimeout);
  EXPECT_EQ(back.packet_count, 1234u);
  EXPECT_EQ(back.byte_count, 567890u);
}

TEST(OfWire, Barrier) {
  round_trip(BarrierRequest{});
  round_trip(BarrierReply{});
}

TEST(OfWire, ErrorMsg) {
  ErrorMsg e;
  e.type = 3;  // OFPET_FLOW_MOD_FAILED
  e.code = 0;  // OFPFMFC_ALL_TABLES_FULL
  e.data = {0xDE, 0xAD};
  const auto back = round_trip(e);
  EXPECT_EQ(back.type, 3);
  EXPECT_EQ(back.code, 0);
  EXPECT_EQ(back.data.size(), 2u);
}

TEST(OfWire, FlowStats) {
  FlowStatsRequest req;
  req.table_id = 0xFF;
  req.out_port = ofpp::kNone;
  const auto back_req = round_trip(req);
  EXPECT_EQ(back_req.table_id, 0xFF);

  FlowStatsReply rep;
  FlowStatsEntry e1;
  e1.priority = 100;
  e1.cookie = 7;
  e1.packet_count = 55;
  e1.actions = {ActionOutput{2}};
  FlowStatsEntry e2;
  e2.priority = 200;
  rep.flows = {e1, e2};
  const auto back = round_trip(rep);
  ASSERT_EQ(back.flows.size(), 2u);
  EXPECT_EQ(back.flows[0].priority, 100);
  EXPECT_EQ(back.flows[0].packet_count, 55u);
  ASSERT_EQ(back.flows[0].actions.size(), 1u);
  EXPECT_EQ(back.flows[1].priority, 200);
  EXPECT_TRUE(back.flows[1].actions.empty());
}

TEST(OfWire, PortStats) {
  PortStatsRequest req;
  req.port_no = 2;
  EXPECT_EQ(round_trip(req).port_no, 2);
  // Request body is 8 bytes after the stats header (spec: ofp_port_stats_request).
  EXPECT_EQ(encode(req, 1).size(), 8u + 4u + 8u);

  PortStatsReply rep;
  PortStatsEntry e;
  e.port_no = 1;
  e.rx_packets = 1000;
  e.tx_packets = 900;
  e.rx_bytes = 123456;
  e.rx_crc_err = 3;
  e.tx_dropped = 7;
  rep.ports = {e, PortStatsEntry{}};
  const auto back = round_trip(rep);
  ASSERT_EQ(back.ports.size(), 2u);
  EXPECT_EQ(back.ports[0].port_no, 1);
  EXPECT_EQ(back.ports[0].rx_packets, 1000u);
  EXPECT_EQ(back.ports[0].rx_bytes, 123456u);
  EXPECT_EQ(back.ports[0].rx_crc_err, 3u);
  EXPECT_EQ(back.ports[0].tx_dropped, 7u);
  // Each ofp_port_stats entry is 104 bytes.
  EXPECT_EQ(encode(rep, 1).size(), 8u + 4u + 2u * 104u);
}

TEST(OfWire, AggregateStats) {
  AggregateStatsRequest req;
  req.match = OfMatch::exact_5tuple(1, 2, 17, 3, 4);
  req.table_id = 0;
  const auto back_req = round_trip(req);
  EXPECT_EQ(back_req.match, req.match);
  EXPECT_EQ(back_req.table_id, 0);

  AggregateStatsReply rep;
  rep.packet_count = 777;
  rep.byte_count = 88888;
  rep.flow_count = 9;
  const auto back = round_trip(rep);
  EXPECT_EQ(back.packet_count, 777u);
  EXPECT_EQ(back.byte_count, 88888u);
  EXPECT_EQ(back.flow_count, 9u);
  // ofp_aggregate_stats_reply body is 24 bytes after the stats header.
  EXPECT_EQ(encode(rep, 1).size(), 8u + 4u + 24u);
}

TEST(OfWire, DecodeRejectsShortBuffer) {
  const Bytes wire = encode(Hello{}, 1);
  EXPECT_FALSE(decode(ByteSpan{wire.data(), 4}));
}

TEST(OfWire, DecodeRejectsWrongVersion) {
  Bytes wire = encode(Hello{}, 1);
  wire[0] = 0x04;  // OF 1.3
  EXPECT_FALSE(decode(ByteSpan{wire.data(), wire.size()}));
}

TEST(OfWire, DecodeRejectsPartialMessage) {
  const Bytes wire = encode(FlowMod{}, 1);
  EXPECT_FALSE(decode(ByteSpan{wire.data(), wire.size() - 10}));
}

TEST(OfWire, DecodeStopsAtDeclaredLength) {
  Bytes wire = encode(Hello{}, 1);
  wire.push_back(0xFF);  // trailing bytes of the next message
  const auto d = decode(ByteSpan{wire.data(), wire.size()});
  ASSERT_TRUE(d);
  EXPECT_EQ(d->wire_size, 8u);
}

TEST(OfWire, MessageTypeMapping) {
  EXPECT_EQ(message_type(OfMessage{Hello{}}), MsgType::kHello);
  EXPECT_EQ(message_type(OfMessage{FlowMod{}}), MsgType::kFlowMod);
  EXPECT_EQ(message_type(OfMessage{BarrierReply{}}), MsgType::kBarrierReply);
  EXPECT_EQ(message_type(OfMessage{FlowStatsReply{}}), MsgType::kStatsReply);
}

}  // namespace
}  // namespace osnt::openflow
