// Generation-counted flow slab and the O(1) arithmetic flow demux: the
// storage and addressing layer that lets osnt::tcp scale past 64k flows
// without per-packet map lookups.
#include <gtest/gtest.h>

#include <cstddef>
#include <stdexcept>
#include <vector>

#include "osnt/net/headers.hpp"
#include "osnt/tcp/flow_slab.hpp"
#include "osnt/tcp/workload.hpp"

namespace osnt::tcp {
namespace {

// ------------------------------------------------------------- Slab

struct Tracked {
  static inline int live = 0;
  int value;
  explicit Tracked(int v) : value(v) {
    if (v < 0) throw std::runtime_error("tracked ctor");
    ++live;
  }
  ~Tracked() { --live; }
};

TEST(FlowSlab, DenseCreationYieldsSlotEqualsOrder) {
  Slab<Tracked> s;
  // Cross two 256-entry blocks to cover block growth.
  for (int i = 0; i < 600; ++i) {
    const auto h = s.emplace(i);
    EXPECT_EQ(h.slot, static_cast<std::uint32_t>(i));
    EXPECT_TRUE(static_cast<bool>(h));
  }
  EXPECT_EQ(s.size(), 600u);
  for (std::uint32_t i = 0; i < 600; ++i) {
    EXPECT_EQ(s[i].value, static_cast<int>(i));
  }
  s.clear();
  EXPECT_EQ(Tracked::live, 0);
}

TEST(FlowSlab, StaleHandleCannotReachSlotReuse) {
  Slab<Tracked> s;
  const auto a = s.emplace(1);
  ASSERT_NE(s.get(a), nullptr);
  EXPECT_TRUE(s.erase(a));
  EXPECT_EQ(s.get(a), nullptr);
  EXPECT_FALSE(s.erase(a));  // double erase is a no-op

  // LIFO free list: the next emplace reuses the same slot with a new gen.
  const auto b = s.emplace(2);
  EXPECT_EQ(b.slot, a.slot);
  EXPECT_NE(b.gen, a.gen);
  EXPECT_EQ(s.get(a), nullptr);       // stale
  ASSERT_NE(s.get(b), nullptr);
  EXPECT_EQ(s.get(b)->value, 2);
  s.clear();
  EXPECT_EQ(Tracked::live, 0);
}

TEST(FlowSlab, NullHandleNeverResolves) {
  Slab<Tracked> s;
  Slab<Tracked>::Handle null;
  EXPECT_FALSE(static_cast<bool>(null));
  EXPECT_EQ(s.get(null), nullptr);
  (void)s.emplace(7);
  EXPECT_EQ(s.get(null), nullptr);
  s.clear();
}

TEST(FlowSlab, ThrowingCtorRestoresFreeList) {
  Slab<Tracked> s;
  const auto a = s.emplace(1);
  EXPECT_THROW((void)s.emplace(-1), std::runtime_error);
  EXPECT_EQ(s.size(), 1u);
  // The aborted slot went back on the free list and is handed out next.
  const auto b = s.emplace(2);
  EXPECT_EQ(b.slot, a.slot + 1);
  EXPECT_EQ(s.get(b)->value, 2);
  s.clear();
  EXPECT_EQ(Tracked::live, 0);
}

TEST(FlowSlab, AddressesAreStableAcrossGrowth) {
  Slab<Tracked> s;
  const auto h0 = s.emplace(42);
  Tracked* p0 = s.get(h0);
  for (int i = 0; i < 2000; ++i) (void)s.emplace(i);
  EXPECT_EQ(s.get(h0), p0);  // block storage never relocates
  EXPECT_EQ(p0->value, 42);
  s.clear();
  EXPECT_EQ(Tracked::live, 0);
}

// ------------------------------------------------------------- demux

TEST(FlowDemux, RoundTripsEveryAddressingRegime) {
  // Indices below, at, and above the 8192-per-group port boundary, plus
  // the extremes of the 2^21 space.
  const std::size_t cases[] = {0,       1,         kPortsPerGroup - 1,
                               kPortsPerGroup,     kPortsPerGroup + 1,
                               100000,  1000000,   kMaxFlows - 1};
  for (const std::size_t i : cases) {
    EXPECT_EQ(flow_index_of_data(receiver_ip_of(i), receiver_port_of(i)), i);
    EXPECT_EQ(flow_index_of_ack(sender_ip_of(i), sender_port_of(i)), i);
  }
}

TEST(FlowDemux, EndpointsAreDistinctAcrossGroups) {
  // Two flows one group apart share a port but differ in the IP octet.
  const std::size_t i = 5, j = i + kPortsPerGroup;
  EXPECT_EQ(receiver_port_of(i), receiver_port_of(j));
  EXPECT_NE(receiver_ip_of(i).v, receiver_ip_of(j).v);
  EXPECT_NE(flow_index_of_data(receiver_ip_of(i), receiver_port_of(i)),
            flow_index_of_data(receiver_ip_of(j), receiver_port_of(j)));
}

TEST(FlowDemux, ForeignTrafficMapsToNoFlow) {
  const net::Ipv4Addr rx = receiver_ip_of(0);
  // Port outside the receiver range (below base, and past the group).
  EXPECT_EQ(flow_index_of_data(rx, kReceiverPortBase - 1), kNoFlow);
  EXPECT_EQ(flow_index_of_data(
                rx, static_cast<std::uint16_t>(kReceiverPortBase +
                                               kPortsPerGroup)),
            kNoFlow);
  // Right port, wrong prefix: sender-side 10.0.x.1, foreign 192.168.0.1,
  // and a wrong host octet 10.1.0.2.
  EXPECT_EQ(flow_index_of_data(sender_ip_of(0), receiver_port_of(0)),
            kNoFlow);
  EXPECT_EQ(flow_index_of_data(net::Ipv4Addr::of(192, 168, 0, 1),
                               receiver_port_of(0)),
            kNoFlow);
  EXPECT_EQ(flow_index_of_data(net::Ipv4Addr::of(10, 1, 0, 2),
                               receiver_port_of(0)),
            kNoFlow);
  // The ACK demux rejects receiver-side addresses symmetrically.
  EXPECT_EQ(flow_index_of_ack(receiver_ip_of(0), sender_port_of(0)),
            kNoFlow);
  EXPECT_EQ(flow_index_of_ack(sender_ip_of(0), kSenderPortBase - 1),
            kNoFlow);
}

}  // namespace
}  // namespace osnt::tcp
