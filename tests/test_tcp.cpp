// Conformance suite for the pluggable congestion controllers plus
// sender-side (tcp::Flow) unit checks. Every controller must satisfy the
// same contract: exponential window growth while the pipe is unprobed,
// a strict window reduction on loss, and a near-collapse on RTO — the
// properties the closed-loop acceptance tests then observe end to end.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "osnt/net/parser.hpp"
#include "osnt/sim/engine.hpp"
#include "osnt/tcp/congestion.hpp"
#include "osnt/tcp/flow.hpp"

namespace osnt::tcp {
namespace {

constexpr std::uint32_t kMss = 1448;
constexpr Picos kRtt = kPicosPerMilli;  // 1 ms synthetic path

/// Deliver one round of per-segment ACKs: `cwnd/mss` ACKs of one MSS
/// each, the first flagged round_start. `rate_bps` is the delivery-rate
/// sample carried by every ACK (BBR's model input; loss-based controllers
/// ignore it). Returns the sim-time cursor after the round.
Picos ack_one_round(CongestionControl& cc, Picos now, double rate_bps,
                    std::uint64_t inflight) {
  const std::uint64_t segs = std::max<std::uint64_t>(cc.cwnd_bytes() / kMss, 1);
  for (std::uint64_t i = 0; i < segs; ++i) {
    AckEvent ev;
    ev.now = now;
    ev.bytes_acked = kMss;
    ev.bytes_in_flight = inflight;
    ev.rtt = kRtt;
    ev.delivery_rate_bps = rate_bps;
    ev.round_start = i == 0;
    cc.on_ack(ev);
    now += kRtt / static_cast<Picos>(segs);
  }
  return now;
}

class CcConformance : public ::testing::TestWithParam<const char*> {
 protected:
  [[nodiscard]] static std::unique_ptr<CongestionControl> make() {
    CcConfig cfg;
    cfg.mss = kMss;
    return make_congestion_control(GetParam(), cfg);
  }
};

TEST_P(CcConformance, FactoryNameRoundTrips) {
  EXPECT_STREQ(make()->name(), GetParam());
}

TEST_P(CcConformance, StartsAtInitialWindow) {
  EXPECT_EQ(make()->cwnd_bytes(), std::uint64_t{10} * kMss);
}

TEST_P(CcConformance, SlowStartDoublesPerRound) {
  // While the pipe is unprobed every controller must grow the window
  // ~2x per round trip: byte-counted slow start for NewReno/Cubic, the
  // 2/ln2 startup gain for BbrLite (whose bandwidth samples here double
  // every round, as they do on a real uncongested path).
  auto cc = make();
  Picos now = kPicosPerMilli;
  double rate = 2.5e9;
  for (int round = 0; round < 3; ++round) {
    const std::uint64_t before = cc->cwnd_bytes();
    now = ack_one_round(*cc, now, rate, /*inflight=*/before);
    EXPECT_GE(cc->cwnd_bytes(), before + before * 9 / 10)
        << GetParam() << " round " << round;
    rate *= 2.0;
  }
}

TEST_P(CcConformance, LossStrictlyReducesWindow) {
  auto cc = make();
  Picos now = kPicosPerMilli;
  now = ack_one_round(*cc, now, 2.5e9, cc->cwnd_bytes());
  now = ack_one_round(*cc, now, 5e9, cc->cwnd_bytes());
  const std::uint64_t before = cc->cwnd_bytes();
  cc->on_loss(now, /*bytes_in_flight=*/before);
  EXPECT_LT(cc->cwnd_bytes(), before) << GetParam();
  EXPECT_GE(cc->cwnd_bytes(), kMss) << GetParam();
}

TEST_P(CcConformance, RtoCollapsesWindow) {
  auto cc = make();
  Picos now = kPicosPerMilli;
  now = ack_one_round(*cc, now, 2.5e9, cc->cwnd_bytes());
  now = ack_one_round(*cc, now, 5e9, cc->cwnd_bytes());
  const std::uint64_t before = cc->cwnd_bytes();
  cc->on_rto(now);
  // Loss-based controllers restart from one segment; BbrLite floors at
  // its 4-packet minimum. Either way the window collapses to a handful
  // of segments and sits strictly below the pre-RTO value.
  EXPECT_LE(cc->cwnd_bytes(), std::uint64_t{4} * kMss) << GetParam();
  EXPECT_LT(cc->cwnd_bytes(), before) << GetParam();
}

TEST_P(CcConformance, RecoversGrowthAfterRto) {
  auto cc = make();
  Picos now = kPicosPerMilli;
  now = ack_one_round(*cc, now, 2.5e9, cc->cwnd_bytes());
  cc->on_rto(now);
  const std::uint64_t floor = cc->cwnd_bytes();
  for (int round = 0; round < 4; ++round) {
    now = ack_one_round(*cc, now, 5e9, cc->cwnd_bytes());
  }
  EXPECT_GT(cc->cwnd_bytes(), floor) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Tcp, CcConformance,
                         ::testing::Values("newreno", "cubic", "bbr"));

TEST(TcpCc, FactoryRejectsUnknownName) {
  EXPECT_THROW(make_congestion_control("vegas", CcConfig{}),
               std::invalid_argument);
}

TEST(TcpCc, BbrConvergesToOfferedRateAndCyclesNearIt) {
  // Constant delivery-rate samples at B must drive the windowed-max
  // estimate to exactly B: after startup detects the plateau (3 rounds
  // without 1.25x growth) and drain empties the queue, the pacing rate
  // must stay inside the probe_bw gain envelope [0.75B, 1.25B] and the
  // window near cwnd_gain * BDP.
  CcConfig cfg;
  cfg.mss = kMss;
  const auto cc = make_congestion_control("bbr", cfg);
  const double bps = 2e9;
  const std::uint64_t bdp = static_cast<std::uint64_t>(
      bps * static_cast<double>(kRtt) / kPicosPerSec / 8.0);
  Picos now = kPicosPerMilli;
  for (int round = 0; round < 24; ++round) {
    // Report a drained pipe (inflight at half BDP) so drain mode can exit.
    now = ack_one_round(*cc, now, bps, bdp / 2);
  }
  const double pacing = cc->pacing_rate_bps();
  EXPECT_GE(pacing, 0.75 * bps * 0.999);
  EXPECT_LE(pacing, 1.25 * bps * 1.001);
  EXPECT_GE(cc->cwnd_bytes(), 2 * bdp - 2 * kMss);
  EXPECT_LE(cc->cwnd_bytes(), 2 * bdp + 2 * kMss);
}

TEST(TcpCc, BbrLossIsNotACongestionCollapse) {
  // BBRv1 keeps its model on loss: the window caps near inflight (7/8)
  // instead of halving, and never falls below the 4-packet floor.
  CcConfig cfg;
  cfg.mss = kMss;
  const auto cc = make_congestion_control("bbr", cfg);
  const std::uint64_t before = cc->cwnd_bytes();
  cc->on_loss(kPicosPerMilli, /*bytes_in_flight=*/2 * kMss);
  EXPECT_EQ(cc->cwnd_bytes(), std::uint64_t{4} * kMss);
  EXPECT_LT(cc->cwnd_bytes(), before);
}

// ------------------------------------------------------------ tcp::Flow

struct EmittedFrames {
  std::vector<net::Packet> frames;
  bool accept = true;
};

FlowConfig flow_config() {
  FlowConfig fc;
  fc.flow_id = 1;
  fc.src_mac = net::MacAddr::from_index(1);
  fc.dst_mac = net::MacAddr::from_index(2);
  fc.src_ip = net::Ipv4Addr::of(10, 0, 0, 1);
  fc.dst_ip = net::Ipv4Addr::of(10, 0, 1, 1);
  fc.src_port = 40000;
  fc.dst_port = 50000;
  fc.seed = 42;
  return fc;
}

TEST(TcpFlow, StartSendsInitialWindowOfWellFormedFrames) {
  sim::Engine eng;
  EmittedFrames sink;
  Flow flow{eng, flow_config(), [&sink](net::Packet&& p) {
              if (sink.accept) sink.frames.push_back(std::move(p));
              return sink.accept;
            }};
  flow.start();  // emission is synchronous; nothing to pump
  ASSERT_EQ(sink.frames.size(), 10u);  // IW10
  std::uint32_t expect_seq = flow.isn();
  for (const net::Packet& pkt : sink.frames) {
    const auto parsed = net::parse_packet(pkt.bytes());
    ASSERT_TRUE(parsed);
    ASSERT_EQ(parsed->l4, net::L4Kind::kTcp);
    EXPECT_EQ(parsed->tcp.src_port, 40000);
    EXPECT_EQ(parsed->tcp.dst_port, 50000);
    EXPECT_EQ(parsed->tcp.seq, expect_seq);
    expect_seq += kMss;
    // 1448 MSS + 32 B TCP header (timestamps) + 20 IP + 14 eth; the
    // 4-byte FCS exists only on the wire, not in the stored frame.
    EXPECT_EQ(pkt.size(), 1514u);
  }
  EXPECT_EQ(flow.stats().segs_sent, 10u);
  EXPECT_EQ(flow.bytes_in_flight(), std::uint64_t{10} * kMss);
}

TEST(TcpFlow, ThreeDupAcksTriggerFastRetransmit) {
  sim::Engine eng;
  EmittedFrames sink;
  Flow flow{eng, flow_config(), [&sink](net::Packet&& p) {
              sink.frames.push_back(std::move(p));
              return true;
            }};
  flow.start();
  const std::size_t sent = sink.frames.size();
  const std::uint64_t cwnd_before = flow.cwnd_bytes();

  net::TcpHeader ack;
  ack.flags = net::TcpFlags::kAck;
  ack.ack = flow.isn();  // acks nothing: every arrival is a duplicate
  for (int i = 0; i < 4; ++i) {
    flow.on_ack(ack, /*peer_tsval=*/0, /*tsecr=*/0, eng.now());
  }
  EXPECT_EQ(flow.stats().fast_retx, 1u);
  EXPECT_EQ(flow.stats().retransmits, 1u);
  EXPECT_GE(flow.stats().dup_acks, 3u);
  EXPECT_EQ(flow.stats().cwnd_reductions, 1u);
  EXPECT_LT(flow.cwnd_bytes(), cwnd_before);
  ASSERT_GT(sink.frames.size(), sent);
  // The retransmission resends the first unacked segment.
  const auto parsed = net::parse_packet(sink.frames[sent].bytes());
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->tcp.seq, flow.isn());
}

TEST(TcpFlow, SilentLossFiresBackedOffRtosAndGoesBackN) {
  sim::Engine eng;
  std::size_t emitted = 0;
  FlowConfig fc = flow_config();
  fc.min_rto = kPicosPerMilli;
  fc.max_rto = 8 * kPicosPerMilli;
  Flow flow{eng, fc, [&emitted](net::Packet&&) {
              ++emitted;
              return true;  // accepted by the queue, dropped by the wire
            }};
  flow.start();
  eng.run_until(40 * kPicosPerMilli);
  // No ACK ever arrives: the RTO must fire repeatedly with exponential
  // backoff bounded by max_rto (40 ms of 1,2,4,8,8,... ms fires).
  EXPECT_GE(flow.stats().rto_fires, 4u);
  EXPECT_LE(flow.stats().rto_fires, 8u);
  EXPECT_GT(flow.stats().retransmits, 0u);
  EXPECT_LE(flow.current_rto(), fc.max_rto);
  // Go-back-N: after each fire the flow restarts from snd_una.
  EXPECT_EQ(flow.stats().bytes_acked, 0u);
}

TEST(TcpFlow, AckBeyondSndNxtAfterRtoDoesNotDeadlock) {
  // Regression: an RTO rolls snd_nxt back to snd_una (go-back-N) while
  // the original transmissions are still in flight; their cumulative ACK
  // then lands beyond snd_nxt. bytes_in_flight must clamp to zero rather
  // than underflow to ~2^64 — the underflow closed the window forever
  // and left no timer armed (the new-data path had just cancelled the
  // RTO), deadlocking the flow.
  sim::Engine eng;
  EmittedFrames sink;
  FlowConfig fc = flow_config();
  fc.min_rto = kPicosPerMilli;
  Flow flow{eng, fc, [&sink](net::Packet&& p) {
              sink.frames.push_back(std::move(p));
              return true;
            }};
  flow.start();  // 10 segments in flight, none ACKed yet
  eng.run_until(2 * kPicosPerMilli);
  ASSERT_GE(flow.stats().rto_fires, 1u);  // snd_nxt rolled back to 0

  const std::size_t sent_before = sink.frames.size();
  net::TcpHeader ack;
  ack.flags = net::TcpFlags::kAck;
  ack.ack = flow.isn() + 5 * kMss;  // delayed ACK of the original sends
  flow.on_ack(ack, /*peer_tsval=*/0, /*tsecr=*/0, eng.now());
  EXPECT_EQ(flow.stats().bytes_acked, std::uint64_t{5} * kMss);
  EXPECT_LE(flow.bytes_in_flight(), flow.cwnd_bytes());  // no underflow
  ASSERT_GT(sink.frames.size(), sent_before);  // the window reopened
  // Sending resumes at the ACKed offset, not at the stale snd_nxt.
  const auto parsed = net::parse_packet(sink.frames[sent_before].bytes());
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->tcp.seq, flow.isn() + 5 * kMss);
  // The flow stays live: the re-armed RTO keeps recovering the tail.
  eng.run_until(eng.now() + 10 * kPicosPerMilli);
  EXPECT_GT(sink.frames.size(), sent_before + 1);
}

TEST(TcpFlow, CumulativeAckAdvancesAndSamplesRtt) {
  sim::Engine eng;
  EmittedFrames sink;
  Flow flow{eng, flow_config(), [&sink](net::Packet&& p) {
              sink.frames.push_back(std::move(p));
              return true;
            }};
  flow.start();
  const Picos rtt = 2 * kPicosPerMicro;

  // Echo the first segment's tsval back after one synthetic RTT.
  const auto first = net::parse_packet(sink.frames.front().bytes());
  ASSERT_TRUE(first);
  net::TcpHeader ack;
  ack.flags = net::TcpFlags::kAck;
  ack.ack = flow.isn() + 2 * kMss;
  const std::uint32_t sent_tsval =
      static_cast<std::uint32_t>(eng.now() / kPicosPerNano);
  flow.on_ack(ack, /*peer_tsval=*/7, /*tsecr=*/sent_tsval - 2,
              eng.now() + rtt);
  EXPECT_EQ(flow.stats().bytes_acked, std::uint64_t{2} * kMss);
  EXPECT_EQ(flow.stats().acks_received, 1u);
  EXPECT_GT(flow.srtt(), 0);
  // Acking 2 segments grows cwnd by 2 MSS (slow start) and try_send
  // refills the window: 8 left in flight + 4 fresh = 12 MSS.
  EXPECT_EQ(flow.bytes_in_flight(), std::uint64_t{12} * kMss);
  EXPECT_EQ(flow.stats().segs_sent, 14u);
}

TEST(TcpFlow, ByteLimitedFlowFinishes) {
  sim::Engine eng;
  EmittedFrames sink;
  FlowConfig fc = flow_config();
  fc.bytes_to_send = 3 * kMss;
  Flow flow{eng, fc, [&sink](net::Packet&& p) {
              sink.frames.push_back(std::move(p));
              return true;
            }};
  flow.start();
  EXPECT_EQ(sink.frames.size(), 3u);
  net::TcpHeader ack;
  ack.flags = net::TcpFlags::kAck;
  ack.ack = flow.isn() + 3 * kMss;
  flow.on_ack(ack, 0, 0, eng.now() + kPicosPerMicro);
  EXPECT_TRUE(flow.done());
  EXPECT_EQ(flow.bytes_in_flight(), 0u);
}

TEST(TcpFlow, RejectedEmitsAreCountedAndRecovered) {
  sim::Engine eng;
  EmittedFrames sink;
  sink.accept = false;  // bottleneck queue refuses everything
  Flow flow{eng, flow_config(), [&sink](net::Packet&& p) {
              if (sink.accept) sink.frames.push_back(std::move(p));
              return sink.accept;
            }};
  flow.start();
  EXPECT_GT(flow.stats().emit_rejects, 0u);
  // The refused segments stay un-acked; the RTO path owns recovery.
  sink.accept = true;
  eng.run_until(5 * kPicosPerMilli);
  EXPECT_GT(flow.stats().rto_fires, 0u);
  EXPECT_FALSE(sink.frames.empty());
}

TEST(TcpFlow, IsnDerivesFromSeedDeterministically) {
  sim::Engine eng;
  FlowConfig fc = flow_config();
  auto emit = [](net::Packet&&) { return true; };
  Flow a{eng, fc, emit};
  Flow b{eng, fc, emit};
  EXPECT_EQ(a.isn(), b.isn());
  fc.seed = 43;
  Flow c{eng, fc, emit};
  EXPECT_NE(a.isn(), c.isn());
}

}  // namespace
}  // namespace osnt::tcp
