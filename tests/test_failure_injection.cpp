// Failure injection: wire bit errors, FCS drops at the RX MAC, CRC-error
// accounting up through switch port stats, GPS holdover behaviour.
#include <gtest/gtest.h>

#include <cmath>

#include "osnt/core/device.hpp"
#include "osnt/core/measure.hpp"
#include "osnt/hw/port.hpp"
#include "osnt/net/builder.hpp"
#include "osnt/tstamp/clock.hpp"

namespace osnt {
namespace {

net::Packet frame(std::size_t size = 512) {
  net::PacketBuilder b;
  return b.eth(net::MacAddr::from_index(1), net::MacAddr::from_index(2))
      .ipv4(net::Ipv4Addr::of(10, 0, 0, 1), net::Ipv4Addr::of(10, 0, 1, 1),
            net::ipproto::kUdp)
      .udp(1024, 5001)
      .pad_to_frame(size)
      .build();
}

TEST(BitErrors, CleanLinkDeliversEverything) {
  sim::Engine eng;
  hw::EthPort a{eng}, b{eng};
  hw::connect(a, b);
  for (int i = 0; i < 100; ++i) (void)a.tx().transmit(frame());
  eng.run();
  EXPECT_EQ(b.rx().frames_received(), 100u);
  EXPECT_EQ(b.rx().crc_errors(), 0u);
  EXPECT_EQ(a.out_link().frames_corrupted(), 0u);
}

TEST(BitErrors, BerCorruptsExpectedFraction) {
  sim::Engine eng;
  hw::EthPort a{eng}, b{eng};
  hw::connect(a, b);
  // 512 B frame = 4256 line bits; BER 1e-4 → P(hit) ≈ 1 - e^-0.426 ≈ 0.347.
  a.out_link().set_bit_error_rate(1e-4);
  const int n = 4000;
  for (int i = 0; i < n; ++i) (void)a.tx().transmit(frame());
  eng.run();
  const double hit_frac =
      static_cast<double>(a.out_link().frames_corrupted()) / n;
  EXPECT_NEAR(hit_frac, 0.347, 0.03);
  EXPECT_EQ(b.rx().crc_errors(), a.out_link().frames_corrupted());
  EXPECT_EQ(b.rx().frames_received() + b.rx().crc_errors(),
            static_cast<std::uint64_t>(n));
}

TEST(BitErrors, CorruptedFramesNeverReachTheMonitor) {
  sim::Engine eng;
  core::OsntDevice osnt{eng};
  hw::connect(osnt.port(0), osnt.port(1));
  osnt.port(0).out_link().set_bit_error_rate(1e-5);
  core::TrafficSpec spec;
  spec.rate = gen::RateSpec::gbps(2.0);
  spec.frame_size = 1518;
  const auto r = core::run_capture_test(eng, osnt, 0, 1, spec, 4 * kPicosPerMilli);
  const auto corrupted = osnt.port(0).out_link().frames_corrupted();
  EXPECT_GT(corrupted, 0u);
  // Lost = exactly the corrupted frames (the MAC dropped them pre-pipeline).
  EXPECT_EQ(r.tx_frames - r.rx_frames, corrupted);
  EXPECT_EQ(osnt.port(1).rx().crc_errors(), corrupted);
}

TEST(BitErrors, ZeroBerAfterNonZeroStopsCorruption) {
  sim::Engine eng;
  hw::EthPort a{eng}, b{eng};
  hw::connect(a, b);
  a.out_link().set_bit_error_rate(1.0);  // corrupt everything
  (void)a.tx().transmit(frame());
  eng.run();
  EXPECT_EQ(a.out_link().frames_corrupted(), 1u);
  a.out_link().set_bit_error_rate(0.0);
  (void)a.tx().transmit(frame());
  eng.run();
  EXPECT_EQ(a.out_link().frames_corrupted(), 1u);
  EXPECT_EQ(b.rx().frames_received(), 1u);
}

// ------------------------------------------------------------- holdover

TEST(Holdover, UnplugDriftsReplugRecovers) {
  tstamp::GpsConfig gcfg;
  gcfg.jitter_rms = 0;
  tstamp::GpsModel gps{gcfg};
  tstamp::ClockConfig cfg;
  cfg.osc.ppm_offset = 10.0;
  tstamp::DisciplinedClock clk{gps, cfg};

  // Converge for 10 s.
  (void)clk.now(10 * kPicosPerSec);
  EXPECT_LT(std::abs(clk.error_nanos(10 * kPicosPerSec)), 200.0);
  EXPECT_FALSE(clk.in_holdover());

  // Unplug the antenna: the clock coasts on its trimmed frequency.
  gps.set_connected(false);
  (void)clk.now(11 * kPicosPerSec);
  EXPECT_TRUE(clk.in_holdover());
  const double err20 = clk.error_nanos(20 * kPicosPerSec);
  // Far better than the raw 10 ppm (which would be 100 µs over 10 s),
  // because the servo's frequency estimate survives the outage.
  EXPECT_LT(std::abs(err20), 10'000.0);

  // Replug: discipline resumes within a couple of seconds.
  gps.set_connected(true);
  (void)clk.now(25 * kPicosPerSec);
  EXPECT_FALSE(clk.in_holdover());
  double err_after = std::abs(clk.error_nanos(30 * kPicosPerSec));
  EXPECT_LT(err_after, 500.0);
}

TEST(Holdover, NeverConnectedStaysFreeRunning) {
  tstamp::GpsConfig gcfg;
  gcfg.connected = false;
  tstamp::GpsModel gps{gcfg};
  tstamp::ClockConfig cfg;
  cfg.osc.ppm_offset = 10.0;
  tstamp::DisciplinedClock clk{gps, cfg};
  EXPECT_TRUE(clk.in_holdover());
  // 10 ppm × 10 s = 100 µs, uncorrected.
  EXPECT_NEAR(clk.error_nanos(10 * kPicosPerSec), 100'000.0, 1'000.0);
}

}  // namespace
}  // namespace osnt
