// Legacy switch model: learning, flooding, latency, queueing drops.
#include <gtest/gtest.h>

#include "osnt/dut/legacy_switch.hpp"
#include "osnt/hw/port.hpp"
#include "osnt/net/builder.hpp"

namespace osnt::dut {
namespace {

net::Packet frame(std::uint64_t src_idx, std::uint64_t dst_idx,
                  std::size_t size = 128) {
  net::PacketBuilder b;
  return b.eth(net::MacAddr::from_index(src_idx),
               net::MacAddr::from_index(dst_idx))
      .ipv4(net::Ipv4Addr::of(10, 0, 0, 1), net::Ipv4Addr::of(10, 0, 1, 1),
            net::ipproto::kUdp)
      .udp(1, 2)
      .pad_to_frame(size)
      .build();
}

struct Bench {
  sim::Engine eng;
  LegacySwitch sw;
  std::vector<std::unique_ptr<hw::EthPort>> hosts;
  std::vector<int> rx_count;

  explicit Bench(LegacySwitchConfig cfg = LegacySwitchConfig()) : sw(eng, cfg) {
    rx_count.assign(sw.num_ports(), 0);
    for (std::size_t i = 0; i < sw.num_ports(); ++i) {
      hosts.push_back(std::make_unique<hw::EthPort>(eng));
      hw::connect(*hosts[i], sw.port(i));
      hosts[i]->rx().set_handler(
          [this, i](net::Packet, Picos, Picos) { ++rx_count[i]; });
    }
  }
};

TEST(LegacySwitch, FloodsUnknownDestination) {
  Bench b;
  (void)b.hosts[0]->tx().transmit(frame(10, 20));
  b.eng.run();
  EXPECT_EQ(b.rx_count[0], 0);  // not back out the ingress
  EXPECT_EQ(b.rx_count[1], 1);
  EXPECT_EQ(b.rx_count[2], 1);
  EXPECT_EQ(b.rx_count[3], 1);
  EXPECT_EQ(b.sw.frames_flooded(), 1u);
}

TEST(LegacySwitch, LearnsAndUnicasts) {
  Bench b;
  // Host on port 1 announces itself (src MAC 20).
  (void)b.hosts[1]->tx().transmit(frame(20, 99));
  b.eng.run();
  EXPECT_EQ(b.sw.mac_table_size(), 1u);
  // Now traffic to MAC 20 goes only to port 1.
  (void)b.hosts[0]->tx().transmit(frame(10, 20));
  b.eng.run();
  EXPECT_EQ(b.rx_count[1], 1);
  EXPECT_EQ(b.rx_count[2], 1);  // only the earlier flood
  EXPECT_EQ(b.rx_count[3], 1);
  EXPECT_EQ(b.sw.frames_forwarded(), 1u);
}

TEST(LegacySwitch, HairpinSuppressed) {
  Bench b;
  (void)b.hosts[0]->tx().transmit(frame(10, 99));  // learn MAC 10 @ port 0
  b.eng.run();
  const auto before = b.rx_count;
  (void)b.hosts[0]->tx().transmit(frame(11, 10));  // to MAC 10, from port 0
  b.eng.run();
  EXPECT_EQ(b.rx_count, before);  // nothing forwarded anywhere
}

TEST(LegacySwitch, BroadcastAlwaysFloods) {
  Bench b;
  net::PacketBuilder pb;
  auto bc = pb.eth(net::MacAddr::from_index(1), net::MacAddr::broadcast())
                .arp(1, net::MacAddr::from_index(1),
                     net::Ipv4Addr::of(10, 0, 0, 1), net::MacAddr{},
                     net::Ipv4Addr::of(10, 0, 0, 2))
                .build();
  (void)b.hosts[2]->tx().transmit(std::move(bc));
  b.eng.run();
  EXPECT_EQ(b.rx_count[0] + b.rx_count[1] + b.rx_count[3], 3);
  EXPECT_EQ(b.rx_count[2], 0);
}

TEST(LegacySwitch, PipelineLatencyObserved) {
  LegacySwitchConfig cfg;
  cfg.pipeline_latency = 10 * kPicosPerMicro;
  cfg.latency_jitter_ns = 0;
  Bench b{cfg};
  // Learn both MACs first.
  (void)b.hosts[1]->tx().transmit(frame(20, 99));
  b.eng.run();
  Picos rx_at = -1;
  b.hosts[1]->rx().set_handler(
      [&](net::Packet, Picos first, Picos) { rx_at = first; });
  const Picos t0 = b.eng.now();
  (void)b.hosts[0]->tx().transmit(frame(10, 20, 64));
  b.eng.run();
  // cable + frame + pipeline + cable: ≈ 9.8 + 67.2 + 10000 + 9.8 ns.
  const double total_ns = to_nanos(rx_at - t0);
  EXPECT_NEAR(total_ns, 10'000 + 67.2 + 2 * 9.8, 5.0);
}

TEST(LegacySwitch, OverloadDropsAtOutputQueue) {
  LegacySwitchConfig cfg;
  cfg.queue_bytes = 8 * 1024;
  Bench b{cfg};
  // Learn victim MAC at port 3.
  (void)b.hosts[3]->tx().transmit(frame(30, 99));
  b.eng.run();
  // Two ports blast line rate at one output: 20G into 10G must drop.
  for (int i = 0; i < 500; ++i) {
    (void)b.hosts[0]->tx().transmit(frame(10, 30, 1518));
    (void)b.hosts[1]->tx().transmit(frame(11, 30, 1518));
  }
  b.eng.run();
  EXPECT_GT(b.sw.frames_dropped(), 0u);
  EXPECT_LT(b.rx_count[3], 1000);
  EXPECT_EQ(static_cast<std::uint64_t>(b.rx_count[3]) + b.sw.frames_dropped(),
            1000u);
}

TEST(LegacySwitch, MacTableCapacityBounded) {
  LegacySwitchConfig cfg;
  cfg.mac_table_size = 4;
  Bench b{cfg};
  for (std::uint64_t m = 1; m <= 10; ++m)
    (void)b.hosts[0]->tx().transmit(frame(100 + m, 999));
  b.eng.run();
  EXPECT_LE(b.sw.mac_table_size(), 4u);
}

TEST(LegacySwitch, CutThroughFasterThanStoreForward) {
  LegacySwitchConfig sf_cfg;
  sf_cfg.latency_jitter_ns = 0;
  sf_cfg.pipeline_latency = 2 * kPicosPerMicro;
  LegacySwitchConfig ct_cfg = sf_cfg;
  ct_cfg.cut_through = true;

  auto measure = [](LegacySwitchConfig cfg) {
    Bench b{cfg};
    (void)b.hosts[1]->tx().transmit(frame(20, 99));
    b.eng.run();
    Picos rx_at = -1;
    b.hosts[1]->rx().set_handler(
        [&](net::Packet, Picos first, Picos) { rx_at = first; });
    const Picos t0 = b.eng.now();
    (void)b.hosts[0]->tx().transmit(frame(10, 20, 1518));
    b.eng.run();
    return rx_at - t0;
  };
  // A 1518 B frame takes ~1.23 µs to receive; cut-through saves that.
  EXPECT_LT(measure(ct_cfg), measure(sf_cfg));
}

}  // namespace
}  // namespace osnt::dut
