// Static MAC programming, no-flood mode, and the leaf-spine fabric.
#include <gtest/gtest.h>

#include "osnt/net/builder.hpp"
#include "osnt/topo/fabric.hpp"

namespace osnt {
namespace {

net::Packet to_mac(net::MacAddr src, net::MacAddr dst) {
  net::PacketBuilder b;
  return b.eth(src, dst)
      .ipv4(net::Ipv4Addr::of(10, 0, 0, 1), net::Ipv4Addr::of(10, 0, 1, 1),
            net::ipproto::kUdp)
      .udp(1, 2)
      .build();
}

TEST(StaticMac, ForwardsWithoutLearning) {
  sim::Engine eng;
  dut::LegacySwitch sw{eng};
  std::vector<std::unique_ptr<hw::EthPort>> hosts;
  std::vector<int> rx(4, 0);
  for (std::size_t i = 0; i < 4; ++i) {
    hosts.push_back(std::make_unique<hw::EthPort>(eng));
    hw::connect(*hosts[i], sw.port(i));
    hosts[i]->rx().set_handler([&rx, i](net::Packet, Picos, Picos) { ++rx[i]; });
  }
  const auto dst = net::MacAddr::from_index(50);
  sw.add_static_mac(dst, 2);
  (void)hosts[0]->tx().transmit(to_mac(net::MacAddr::from_index(1), dst));
  eng.run();
  EXPECT_EQ(rx[2], 1);        // unicast straight to the programmed port
  EXPECT_EQ(rx[1] + rx[3], 0);
  EXPECT_EQ(sw.frames_flooded(), 0u);
}

TEST(StaticMac, SurvivesLearningAndAging) {
  sim::Engine eng;
  dut::LegacySwitchConfig cfg;
  cfg.mac_aging = kPicosPerSec;  // aggressive aging
  dut::LegacySwitch sw{eng, cfg};
  std::vector<std::unique_ptr<hw::EthPort>> hosts;
  for (std::size_t i = 0; i < 4; ++i) {
    hosts.push_back(std::make_unique<hw::EthPort>(eng));
    hw::connect(*hosts[i], sw.port(i));
  }
  const auto mac = net::MacAddr::from_index(50);
  sw.add_static_mac(mac, 2);
  // A frame *from* that MAC on a different port must not relearn it...
  (void)hosts[0]->tx().transmit(to_mac(mac, net::MacAddr::from_index(9)));
  eng.run();
  int rx2 = 0;
  hosts[2]->rx().set_handler([&](net::Packet, Picos, Picos) { ++rx2; });
  // ...and it survives aging.
  eng.run_until(10 * kPicosPerSec);
  (void)hosts[1]->tx().transmit(to_mac(net::MacAddr::from_index(1), mac));
  eng.run();
  EXPECT_EQ(rx2, 1);
}

TEST(NoFlood, UnknownUnicastDropped) {
  sim::Engine eng;
  dut::LegacySwitchConfig cfg;
  cfg.flood_unknown = false;
  dut::LegacySwitch sw{eng, cfg};
  std::vector<std::unique_ptr<hw::EthPort>> hosts;
  int total_rx = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    hosts.push_back(std::make_unique<hw::EthPort>(eng));
    hw::connect(*hosts[i], sw.port(i));
    hosts[i]->rx().set_handler([&](net::Packet, Picos, Picos) { ++total_rx; });
  }
  (void)hosts[0]->tx().transmit(
      to_mac(net::MacAddr::from_index(1), net::MacAddr::from_index(99)));
  eng.run();
  EXPECT_EQ(total_rx, 0);
  EXPECT_EQ(sw.unknown_dropped(), 1u);
  // Broadcast still floods (control traffic must work).
  net::PacketBuilder b;
  (void)hosts[0]->tx().transmit(
      b.eth(net::MacAddr::from_index(1), net::MacAddr::broadcast())
          .arp(1, net::MacAddr::from_index(1), net::Ipv4Addr::of(1, 1, 1, 1),
               net::MacAddr{}, net::Ipv4Addr::of(1, 1, 1, 2))
          .build());
  eng.run();
  EXPECT_EQ(total_rx, 3);
}

// ---------------------------------------------------------------- fabric

TEST(Fabric, RejectsEmptyDimensions) {
  sim::Engine eng;
  topo::FabricConfig cfg;
  cfg.leaves = 0;
  EXPECT_THROW(topo::LeafSpineFabric(eng, cfg), std::invalid_argument);
}

TEST(Fabric, AllPairsReachable) {
  sim::Engine eng;
  topo::FabricConfig cfg;
  cfg.leaves = 2;
  cfg.spines = 2;
  cfg.testers_per_leaf = 2;
  topo::LeafSpineFabric fabric{eng, cfg};
  ASSERT_EQ(fabric.tester_count(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      if (i == j) continue;
      const auto lat = fabric.measure_latency(i, j, 20);
      EXPECT_EQ(lat.count(), 20u) << i << "->" << j;
      EXPECT_GT(lat.quantile(0.5), 0.0);
    }
  }
  // Loop safety: nothing was ever flooded.
  for (std::size_t l = 0; l < 2; ++l)
    EXPECT_EQ(fabric.leaf(l).frames_flooded(), 0u);
  for (std::size_t s = 0; s < 2; ++s)
    EXPECT_EQ(fabric.spine(s).frames_flooded(), 0u);
}

TEST(Fabric, InterLeafSlowerThanIntraLeaf) {
  sim::Engine eng;
  topo::FabricConfig cfg;
  cfg.leaves = 2;
  cfg.spines = 1;
  cfg.testers_per_leaf = 2;
  topo::LeafSpineFabric fabric{eng, cfg};
  // T0,T1 share leaf 0; T2 lives on leaf 1.
  EXPECT_EQ(fabric.hops(0, 1), 1u);
  EXPECT_EQ(fabric.hops(0, 2), 3u);
  const double intra = fabric.measure_latency(0, 1, 50).quantile(0.5);
  const double inter = fabric.measure_latency(0, 2, 50).quantile(0.5);
  EXPECT_GT(inter, 2.0 * intra);  // 3 store-and-forward hops vs 1
}

TEST(Fabric, SpineSpreadByDestination) {
  sim::Engine eng;
  topo::FabricConfig cfg;
  cfg.leaves = 2;
  cfg.spines = 2;
  cfg.testers_per_leaf = 2;
  topo::LeafSpineFabric fabric{eng, cfg};
  // Traffic to T2 (even) rides spine 0; to T3 (odd) rides spine 1.
  (void)fabric.measure_latency(0, 2, 10);
  EXPECT_GT(fabric.spine(0).frames_forwarded(), 0u);
  const auto before = fabric.spine(1).frames_forwarded();
  (void)fabric.measure_latency(0, 3, 10);
  EXPECT_GT(fabric.spine(1).frames_forwarded(), before);
}

TEST(Fabric, AddressingDeterministic) {
  sim::Engine eng;
  topo::LeafSpineFabric fabric{eng};
  EXPECT_EQ(fabric.tester_mac(0), fabric.tester_mac(0));
  EXPECT_NE(fabric.tester_mac(0), fabric.tester_mac(1));
  EXPECT_NE(fabric.tester_ip(0), fabric.tester_ip(1));
}

TEST(Fabric, BadPairThrows) {
  sim::Engine eng;
  topo::LeafSpineFabric fabric{eng};
  EXPECT_THROW((void)fabric.measure_latency(0, 0), std::invalid_argument);
  EXPECT_THROW((void)fabric.measure_latency(0, 99), std::invalid_argument);
}

}  // namespace
}  // namespace osnt
