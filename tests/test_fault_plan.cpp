// FaultPlan: JSON parsing (strict schema), builders, validation, summary.
#include <gtest/gtest.h>

#include <string>

#include "osnt/fault/plan.hpp"

namespace osnt::fault {
namespace {

TEST(FaultPlan, ParsesEveryKindFromJson) {
  const auto plan = FaultPlan::from_json(R"({
    "seed": 42,
    "events": [
      {"type": "link_flap", "at_us": 100, "duration_us": 50, "link": 0},
      {"type": "ber_window", "at_us": 0, "duration_us": 200, "ber": 1e-6,
       "ramp_us": 40},
      {"type": "latency_spike", "at_us": 10, "duration_us": 5,
       "extra_ns": 800},
      {"type": "dma_stall", "at_us": 120, "duration_us": 30},
      {"type": "ctrl_disconnect", "at_ms": 1, "duration_ms": 4},
      {"type": "gps_loss", "at_ms": 0, "duration_ms": 900}
    ]})");
  EXPECT_EQ(plan.seed, 42u);
  ASSERT_EQ(plan.events.size(), 6u);
  // normalize() sorted by start time: ber_window and gps_loss start at 0.
  EXPECT_EQ(plan.events[0].kind, FaultKind::kBerWindow);
  EXPECT_EQ(plan.events[1].kind, FaultKind::kGpsLoss);
  EXPECT_EQ(plan.events[2].kind, FaultKind::kLatencySpike);
  EXPECT_EQ(plan.events[3].kind, FaultKind::kLinkFlap);
  EXPECT_EQ(plan.events[3].at, 100 * kPicosPerMicro);
  EXPECT_EQ(plan.events[3].duration, 50 * kPicosPerMicro);
  EXPECT_EQ(plan.events[3].link, 0);
  EXPECT_EQ(plan.events[4].kind, FaultKind::kDmaStall);
  EXPECT_EQ(plan.events[5].kind, FaultKind::kCtrlDisconnect);
  EXPECT_EQ(plan.events[5].at, kPicosPerMilli);
  EXPECT_DOUBLE_EQ(plan.events[0].ber, 1e-6);
  EXPECT_EQ(plan.events[0].ramp, 40 * kPicosPerMicro);
  EXPECT_EQ(plan.events[2].extra_delay, 800 * kPicosPerNano);
}

TEST(FaultPlan, DefaultsAndOmittedFields) {
  const auto plan = FaultPlan::from_json(
      R"({"events": [{"type": "link_flap", "at_us": 5}]})");
  EXPECT_EQ(plan.seed, 1u);  // default
  ASSERT_EQ(plan.events.size(), 1u);
  EXPECT_EQ(plan.events[0].duration, 0);  // instantaneous
  EXPECT_EQ(plan.events[0].link, -1);     // all links
}

TEST(FaultPlan, UnknownTypeIsHardError) {
  EXPECT_THROW((void)FaultPlan::from_json(
                   R"({"events": [{"type": "cosmic_ray", "at_us": 1}]})"),
               PlanError);
}

TEST(FaultPlan, UnknownKeyIsHardError) {
  // A typoed field must not silently never fire.
  EXPECT_THROW(
      (void)FaultPlan::from_json(
          R"({"events": [{"type": "link_flap", "at_us": 1, "durration_us": 5}]})"),
      PlanError);
  EXPECT_THROW((void)FaultPlan::from_json(R"({"sed": 3, "events": []})"),
               PlanError);
}

TEST(FaultPlan, WrongTypesAndMalformedJsonAreHardErrors) {
  EXPECT_THROW((void)FaultPlan::from_json("not json"), PlanError);
  EXPECT_THROW((void)FaultPlan::from_json(R"({"events": 3})"), PlanError);
  EXPECT_THROW((void)FaultPlan::from_json(R"({"events": [)"), PlanError);
  EXPECT_THROW((void)FaultPlan::from_json(
                   R"({"events": [{"type": "link_flap", "at_us": "soon"}]})"),
               PlanError);
  // Missing required start time.
  EXPECT_THROW(
      (void)FaultPlan::from_json(R"({"events": [{"type": "link_flap"}]})"),
      PlanError);
  // Two units for one field.
  EXPECT_THROW((void)FaultPlan::from_json(
                   R"({"events": [{"type": "link_flap", "at_us": 1, "at_ms": 1}]})"),
               PlanError);
}

TEST(FaultPlan, ValidationRejectsBadValues) {
  FaultPlan bad_ber;
  bad_ber.ber_window(0, kPicosPerMicro, /*ber=*/1.5);
  EXPECT_THROW(bad_ber.normalize(), PlanError);

  FaultPlan bad_ramp;
  bad_ramp.ber_window(0, kPicosPerMicro, 1e-6, /*ramp=*/2 * kPicosPerMicro);
  EXPECT_THROW(bad_ramp.normalize(), PlanError);

  FaultPlan negative_at;
  negative_at.link_flap(-5, kPicosPerMicro);
  EXPECT_THROW(negative_at.normalize(), PlanError);
}

TEST(FaultPlan, BuildersMatchJson) {
  FaultPlan built;
  built.seed = 42;
  built.ber_window(0, 200 * kPicosPerMicro, 1e-6, 40 * kPicosPerMicro)
      .link_flap(100 * kPicosPerMicro, 50 * kPicosPerMicro, 0)
      .dma_stall(120 * kPicosPerMicro, 30 * kPicosPerMicro);
  built.normalize();
  const auto parsed = FaultPlan::from_json(R"({
    "seed": 42,
    "events": [
      {"type": "ber_window", "at_us": 0, "duration_us": 200, "ber": 1e-6,
       "ramp_us": 40},
      {"type": "link_flap", "at_us": 100, "duration_us": 50, "link": 0},
      {"type": "dma_stall", "at_us": 120, "duration_us": 30}
    ]})");
  ASSERT_EQ(built.events.size(), parsed.events.size());
  for (std::size_t i = 0; i < built.events.size(); ++i) {
    EXPECT_EQ(built.events[i].kind, parsed.events[i].kind);
    EXPECT_EQ(built.events[i].at, parsed.events[i].at);
    EXPECT_EQ(built.events[i].duration, parsed.events[i].duration);
    EXPECT_EQ(built.events[i].link, parsed.events[i].link);
    EXPECT_DOUBLE_EQ(built.events[i].ber, parsed.events[i].ber);
    EXPECT_EQ(built.events[i].ramp, parsed.events[i].ramp);
  }
}

TEST(FaultPlan, NormalizeIsStableOnTies) {
  FaultPlan p;
  p.link_flap(kPicosPerMicro, 1).dma_stall(kPicosPerMicro, 1);
  p.normalize();
  ASSERT_EQ(p.events.size(), 2u);
  EXPECT_EQ(p.events[0].kind, FaultKind::kLinkFlap);  // insertion order kept
  EXPECT_EQ(p.events[1].kind, FaultKind::kDmaStall);
}

TEST(FaultPlan, SummaryCountsKinds) {
  FaultPlan p;
  p.link_flap(0, kPicosPerMicro).link_flap(kPicosPerMilli, kPicosPerMicro);
  p.gps_loss(2 * kPicosPerMilli, kPicosPerMilli);
  p.normalize();
  const std::string s = p.summary();
  EXPECT_NE(s.find("3 events"), std::string::npos) << s;
  EXPECT_NE(s.find("2 link_flap"), std::string::npos) << s;
  EXPECT_NE(s.find("1 gps_loss"), std::string::npos) << s;
}

TEST(FaultPlan, LoadMissingFileThrows) {
  EXPECT_THROW((void)FaultPlan::load("/nonexistent/plan.json"), PlanError);
}

TEST(FaultPlan, ParsesBlockTargetedKindsFromJson) {
  const auto plan = FaultPlan::from_json(R"({
    "seed": 9,
    "events": [
      {"type": "rate_limit", "at_ms": 5, "duration_ms": 10,
       "target": "policer", "rate_gbps": 0.5, "ramp_ms": 2,
       "burst_bytes": 15000},
      {"type": "queue_cap", "at_ms": 6, "duration_ms": 8,
       "target": "bottleneck", "queue_frames": 32}
    ]})");
  ASSERT_EQ(plan.events.size(), 2u);
  const FaultEvent& rl = plan.events[0];
  EXPECT_EQ(rl.kind, FaultKind::kRateLimit);
  EXPECT_EQ(rl.at, 5 * kPicosPerMilli);
  EXPECT_EQ(rl.duration, 10 * kPicosPerMilli);
  EXPECT_EQ(rl.target, "policer");
  EXPECT_DOUBLE_EQ(rl.rate_gbps, 0.5);
  EXPECT_EQ(rl.ramp, 2 * kPicosPerMilli);
  EXPECT_EQ(rl.burst_bytes, 15000);
  const FaultEvent& qc = plan.events[1];
  EXPECT_EQ(qc.kind, FaultKind::kQueueCap);
  EXPECT_EQ(qc.target, "bottleneck");
  EXPECT_EQ(qc.queue_frames, 32u);
}

TEST(FaultPlan, BlockTargetedBuildersMatchJson) {
  FaultPlan built;
  built.seed = 9;
  built
      .rate_limit(5 * kPicosPerMilli, 10 * kPicosPerMilli, "policer", 0.5,
                  2 * kPicosPerMilli, 15000)
      .queue_cap(6 * kPicosPerMilli, 8 * kPicosPerMilli, "bottleneck", 32);
  built.normalize();
  const auto parsed = FaultPlan::from_json(R"({
    "seed": 9,
    "events": [
      {"type": "rate_limit", "at_ms": 5, "duration_ms": 10,
       "target": "policer", "rate_gbps": 0.5, "ramp_ms": 2,
       "burst_bytes": 15000},
      {"type": "queue_cap", "at_ms": 6, "duration_ms": 8,
       "target": "bottleneck", "queue_frames": 32}
    ]})");
  ASSERT_EQ(built.events.size(), parsed.events.size());
  for (std::size_t i = 0; i < built.events.size(); ++i) {
    EXPECT_EQ(built.events[i].kind, parsed.events[i].kind);
    EXPECT_EQ(built.events[i].at, parsed.events[i].at);
    EXPECT_EQ(built.events[i].duration, parsed.events[i].duration);
    EXPECT_EQ(built.events[i].target, parsed.events[i].target);
    EXPECT_DOUBLE_EQ(built.events[i].rate_gbps, parsed.events[i].rate_gbps);
    EXPECT_EQ(built.events[i].ramp, parsed.events[i].ramp);
    EXPECT_EQ(built.events[i].burst_bytes, parsed.events[i].burst_bytes);
    EXPECT_EQ(built.events[i].queue_frames, parsed.events[i].queue_frames);
  }
}

TEST(FaultPlan, BlockTargetedValidationRejectsBadValues) {
  FaultPlan no_target;
  no_target.rate_limit(0, kPicosPerMilli, "", 1.0);
  EXPECT_THROW(no_target.normalize(), PlanError);

  FaultPlan zero_rate;
  zero_rate.rate_limit(0, kPicosPerMilli, "policer", 0.0);
  EXPECT_THROW(zero_rate.normalize(), PlanError);

  FaultPlan zero_burst;
  zero_burst.rate_limit(0, kPicosPerMilli, "policer", 1.0, 0,
                        /*burst_bytes=*/0);
  EXPECT_THROW(zero_burst.normalize(), PlanError);

  FaultPlan zero_frames;
  zero_frames.queue_cap(0, kPicosPerMilli, "bottleneck", 0);
  EXPECT_THROW(zero_frames.normalize(), PlanError);
}

/// Parse expecting a PlanError; return its message for substring checks.
std::string plan_error(const std::string& text) {
  try {
    (void)FaultPlan::from_json(text);
  } catch (const PlanError& e) {
    return e.what();
  }
  ADD_FAILURE() << "expected PlanError, plan parsed fine";
  return {};
}

TEST(FaultPlan, ErrorsCarryPositionAndSuggestion) {
  // A typoed event type: position of the offending value plus the
  // nearest known kind.
  const std::string typo_type = plan_error(R"({
    "events": [
      {"type": "rate_limti", "at_ms": 5, "target": "p", "rate_gbps": 1.0}
    ]})");
  EXPECT_NE(typo_type.find("rate_limti"), std::string::npos) << typo_type;
  EXPECT_NE(typo_type.find("did you mean 'rate_limit'?"), std::string::npos)
      << typo_type;
  EXPECT_NE(typo_type.find("line"), std::string::npos) << typo_type;

  // A typoed field on a block-targeted event.
  const std::string typo_key = plan_error(R"({
    "events": [
      {"type": "queue_cap", "at_ms": 5, "target": "q", "queue_framse": 8}
    ]})");
  EXPECT_NE(typo_key.find("queue_framse"), std::string::npos) << typo_key;
  EXPECT_NE(typo_key.find("did you mean 'queue_frames'?"), std::string::npos)
      << typo_key;
  EXPECT_NE(typo_key.find("line"), std::string::npos) << typo_key;
}

TEST(FaultPlan, SummaryCountsBlockTargetedKinds) {
  FaultPlan p;
  p.rate_limit(0, kPicosPerMilli, "policer", 1.0);
  p.queue_cap(kPicosPerMilli, kPicosPerMilli, "bottleneck", 16);
  p.normalize();
  const std::string s = p.summary();
  EXPECT_NE(s.find("1 rate_limit"), std::string::npos) << s;
  EXPECT_NE(s.find("1 queue_cap"), std::string::npos) << s;
}

}  // namespace
}  // namespace osnt::fault
