// FaultPlan: JSON parsing (strict schema), builders, validation, summary.
#include <gtest/gtest.h>

#include <string>

#include "osnt/fault/plan.hpp"

namespace osnt::fault {
namespace {

TEST(FaultPlan, ParsesEveryKindFromJson) {
  const auto plan = FaultPlan::from_json(R"({
    "seed": 42,
    "events": [
      {"type": "link_flap", "at_us": 100, "duration_us": 50, "link": 0},
      {"type": "ber_window", "at_us": 0, "duration_us": 200, "ber": 1e-6,
       "ramp_us": 40},
      {"type": "latency_spike", "at_us": 10, "duration_us": 5,
       "extra_ns": 800},
      {"type": "dma_stall", "at_us": 120, "duration_us": 30},
      {"type": "ctrl_disconnect", "at_ms": 1, "duration_ms": 4},
      {"type": "gps_loss", "at_ms": 0, "duration_ms": 900}
    ]})");
  EXPECT_EQ(plan.seed, 42u);
  ASSERT_EQ(plan.events.size(), 6u);
  // normalize() sorted by start time: ber_window and gps_loss start at 0.
  EXPECT_EQ(plan.events[0].kind, FaultKind::kBerWindow);
  EXPECT_EQ(plan.events[1].kind, FaultKind::kGpsLoss);
  EXPECT_EQ(plan.events[2].kind, FaultKind::kLatencySpike);
  EXPECT_EQ(plan.events[3].kind, FaultKind::kLinkFlap);
  EXPECT_EQ(plan.events[3].at, 100 * kPicosPerMicro);
  EXPECT_EQ(plan.events[3].duration, 50 * kPicosPerMicro);
  EXPECT_EQ(plan.events[3].link, 0);
  EXPECT_EQ(plan.events[4].kind, FaultKind::kDmaStall);
  EXPECT_EQ(plan.events[5].kind, FaultKind::kCtrlDisconnect);
  EXPECT_EQ(plan.events[5].at, kPicosPerMilli);
  EXPECT_DOUBLE_EQ(plan.events[0].ber, 1e-6);
  EXPECT_EQ(plan.events[0].ramp, 40 * kPicosPerMicro);
  EXPECT_EQ(plan.events[2].extra_delay, 800 * kPicosPerNano);
}

TEST(FaultPlan, DefaultsAndOmittedFields) {
  const auto plan = FaultPlan::from_json(
      R"({"events": [{"type": "link_flap", "at_us": 5}]})");
  EXPECT_EQ(plan.seed, 1u);  // default
  ASSERT_EQ(plan.events.size(), 1u);
  EXPECT_EQ(plan.events[0].duration, 0);  // instantaneous
  EXPECT_EQ(plan.events[0].link, -1);     // all links
}

TEST(FaultPlan, UnknownTypeIsHardError) {
  EXPECT_THROW((void)FaultPlan::from_json(
                   R"({"events": [{"type": "cosmic_ray", "at_us": 1}]})"),
               PlanError);
}

TEST(FaultPlan, UnknownKeyIsHardError) {
  // A typoed field must not silently never fire.
  EXPECT_THROW(
      (void)FaultPlan::from_json(
          R"({"events": [{"type": "link_flap", "at_us": 1, "durration_us": 5}]})"),
      PlanError);
  EXPECT_THROW((void)FaultPlan::from_json(R"({"sed": 3, "events": []})"),
               PlanError);
}

TEST(FaultPlan, WrongTypesAndMalformedJsonAreHardErrors) {
  EXPECT_THROW((void)FaultPlan::from_json("not json"), PlanError);
  EXPECT_THROW((void)FaultPlan::from_json(R"({"events": 3})"), PlanError);
  EXPECT_THROW((void)FaultPlan::from_json(R"({"events": [)"), PlanError);
  EXPECT_THROW((void)FaultPlan::from_json(
                   R"({"events": [{"type": "link_flap", "at_us": "soon"}]})"),
               PlanError);
  // Missing required start time.
  EXPECT_THROW(
      (void)FaultPlan::from_json(R"({"events": [{"type": "link_flap"}]})"),
      PlanError);
  // Two units for one field.
  EXPECT_THROW((void)FaultPlan::from_json(
                   R"({"events": [{"type": "link_flap", "at_us": 1, "at_ms": 1}]})"),
               PlanError);
}

TEST(FaultPlan, ValidationRejectsBadValues) {
  FaultPlan bad_ber;
  bad_ber.ber_window(0, kPicosPerMicro, /*ber=*/1.5);
  EXPECT_THROW(bad_ber.normalize(), PlanError);

  FaultPlan bad_ramp;
  bad_ramp.ber_window(0, kPicosPerMicro, 1e-6, /*ramp=*/2 * kPicosPerMicro);
  EXPECT_THROW(bad_ramp.normalize(), PlanError);

  FaultPlan negative_at;
  negative_at.link_flap(-5, kPicosPerMicro);
  EXPECT_THROW(negative_at.normalize(), PlanError);
}

TEST(FaultPlan, BuildersMatchJson) {
  FaultPlan built;
  built.seed = 42;
  built.ber_window(0, 200 * kPicosPerMicro, 1e-6, 40 * kPicosPerMicro)
      .link_flap(100 * kPicosPerMicro, 50 * kPicosPerMicro, 0)
      .dma_stall(120 * kPicosPerMicro, 30 * kPicosPerMicro);
  built.normalize();
  const auto parsed = FaultPlan::from_json(R"({
    "seed": 42,
    "events": [
      {"type": "ber_window", "at_us": 0, "duration_us": 200, "ber": 1e-6,
       "ramp_us": 40},
      {"type": "link_flap", "at_us": 100, "duration_us": 50, "link": 0},
      {"type": "dma_stall", "at_us": 120, "duration_us": 30}
    ]})");
  ASSERT_EQ(built.events.size(), parsed.events.size());
  for (std::size_t i = 0; i < built.events.size(); ++i) {
    EXPECT_EQ(built.events[i].kind, parsed.events[i].kind);
    EXPECT_EQ(built.events[i].at, parsed.events[i].at);
    EXPECT_EQ(built.events[i].duration, parsed.events[i].duration);
    EXPECT_EQ(built.events[i].link, parsed.events[i].link);
    EXPECT_DOUBLE_EQ(built.events[i].ber, parsed.events[i].ber);
    EXPECT_EQ(built.events[i].ramp, parsed.events[i].ramp);
  }
}

TEST(FaultPlan, NormalizeIsStableOnTies) {
  FaultPlan p;
  p.link_flap(kPicosPerMicro, 1).dma_stall(kPicosPerMicro, 1);
  p.normalize();
  ASSERT_EQ(p.events.size(), 2u);
  EXPECT_EQ(p.events[0].kind, FaultKind::kLinkFlap);  // insertion order kept
  EXPECT_EQ(p.events[1].kind, FaultKind::kDmaStall);
}

TEST(FaultPlan, SummaryCountsKinds) {
  FaultPlan p;
  p.link_flap(0, kPicosPerMicro).link_flap(kPicosPerMilli, kPicosPerMicro);
  p.gps_loss(2 * kPicosPerMilli, kPicosPerMilli);
  p.normalize();
  const std::string s = p.summary();
  EXPECT_NE(s.find("3 events"), std::string::npos) << s;
  EXPECT_NE(s.find("2 link_flap"), std::string::npos) << s;
  EXPECT_NE(s.find("1 gps_loss"), std::string::npos) << s;
}

TEST(FaultPlan, LoadMissingFileThrows) {
  EXPECT_THROW((void)FaultPlan::load("/nonexistent/plan.json"), PlanError);
}

}  // namespace
}  // namespace osnt::fault
