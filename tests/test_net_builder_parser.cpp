// PacketBuilder ↔ parse_packet round trips, length/checksum fixups,
// minimum-frame padding and parameterized size sweeps.
#include <gtest/gtest.h>

#include "osnt/net/builder.hpp"
#include "osnt/net/checksum.hpp"
#include "osnt/net/packet.hpp"
#include "osnt/net/parser.hpp"

namespace osnt::net {
namespace {

Packet udp_frame(std::size_t frame_len) {
  PacketBuilder b;
  return b.eth(MacAddr::from_index(1), MacAddr::from_index(2))
      .ipv4(Ipv4Addr::of(10, 0, 0, 1), Ipv4Addr::of(10, 0, 1, 1),
            ipproto::kUdp)
      .udp(1024, 5001)
      .pad_to_frame(frame_len)
      .build();
}

TEST(Builder, MinimumFrameEnforced) {
  PacketBuilder b;
  const Packet p = b.eth(MacAddr::from_index(1), MacAddr::from_index(2))
                       .ipv4(Ipv4Addr::of(1, 1, 1, 1), Ipv4Addr::of(2, 2, 2, 2),
                             ipproto::kUdp)
                       .udp(1, 2)
                       .build();
  EXPECT_EQ(p.wire_len(), kEthMinFrame);
}

TEST(Builder, UdpRoundTrip) {
  const Packet p = udp_frame(128);
  EXPECT_EQ(p.wire_len(), 128u);
  const auto parsed = parse_packet(p.bytes());
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->l3, L3Kind::kIpv4);
  EXPECT_EQ(parsed->l4, L4Kind::kUdp);
  EXPECT_EQ(parsed->udp.src_port, 1024);
  EXPECT_EQ(parsed->udp.dst_port, 5001);
  // IP total length covers everything after Ethernet.
  EXPECT_EQ(parsed->ipv4.total_length, 128 - kEthFcsLen - EthHeader::kSize);
}

TEST(Builder, Ipv4ChecksumValid) {
  const Packet p = udp_frame(256);
  const auto parsed = parse_packet(p.bytes());
  ASSERT_TRUE(parsed);
  // Recomputing over the received header (checksum field included) = 0.
  const ByteSpan hdr{p.data.data() + parsed->l3_offset,
                     parsed->ipv4.header_len()};
  EXPECT_EQ(internet_checksum(hdr), 0u);
}

TEST(Builder, UdpChecksumValidatesAgainstPseudoHeader) {
  const Packet p = udp_frame(200);
  const auto parsed = parse_packet(p.bytes());
  ASSERT_TRUE(parsed);
  // Verify by recomputing over the L4 segment with the stored checksum
  // zeroed: the result must equal the stored value.
  Bytes l4(p.data.begin() + static_cast<std::ptrdiff_t>(parsed->l4_offset),
           p.data.end());
  const std::uint16_t stored = load_be16(l4.data() + 6);
  store_be16(l4.data() + 6, 0);
  const std::uint16_t computed =
      l4_checksum_v4(parsed->ipv4.src, parsed->ipv4.dst, ipproto::kUdp,
                     ByteSpan{l4.data(), l4.size()});
  EXPECT_EQ(stored, computed == 0 ? 0xFFFF : computed);
}

TEST(Builder, TcpRoundTrip) {
  PacketBuilder b;
  const Packet p =
      b.eth(MacAddr::from_index(1), MacAddr::from_index(2))
          .ipv4(Ipv4Addr::of(10, 0, 0, 1), Ipv4Addr::of(10, 0, 0, 2),
                ipproto::kTcp)
          .tcp(80, 54321, 1000, 2000, TcpFlags::kPsh | TcpFlags::kAck)
          .payload_random(64, 42)
          .build();
  const auto parsed = parse_packet(p.bytes());
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->l4, L4Kind::kTcp);
  EXPECT_EQ(parsed->tcp.src_port, 80);
  EXPECT_EQ(parsed->tcp.seq, 1000u);
  EXPECT_EQ(parsed->tcp.flags, TcpFlags::kPsh | TcpFlags::kAck);
}

TEST(Builder, VlanTagged) {
  PacketBuilder b;
  const Packet p = b.eth(MacAddr::from_index(1), MacAddr::from_index(2))
                       .vlan(100, 3)
                       .ipv4(Ipv4Addr::of(1, 2, 3, 4), Ipv4Addr::of(5, 6, 7, 8),
                             ipproto::kUdp)
                       .udp(10, 20)
                       .build();
  const auto parsed = parse_packet(p.bytes());
  ASSERT_TRUE(parsed);
  ASSERT_TRUE(parsed->vlan);
  EXPECT_EQ(parsed->vlan->vid, 100);
  EXPECT_EQ(parsed->vlan->pcp, 3);
  EXPECT_EQ(parsed->effective_ethertype(), 0x0800);
  EXPECT_EQ(parsed->l4, L4Kind::kUdp);
}

TEST(Builder, ArpRoundTrip) {
  PacketBuilder b;
  const Packet p = b.eth(MacAddr::from_index(1), MacAddr::broadcast())
                       .arp(1, MacAddr::from_index(1), Ipv4Addr::of(10, 0, 0, 1),
                            MacAddr{}, Ipv4Addr::of(10, 0, 0, 2))
                       .build();
  const auto parsed = parse_packet(p.bytes());
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->l3, L3Kind::kArp);
  EXPECT_EQ(parsed->arp.opcode, 1);
  EXPECT_EQ(parsed->arp.target_ip, Ipv4Addr::of(10, 0, 0, 2));
}

TEST(Builder, IcmpEcho) {
  PacketBuilder b;
  const Packet p =
      b.eth(MacAddr::from_index(1), MacAddr::from_index(2))
          .ipv4(Ipv4Addr::of(1, 1, 1, 1), Ipv4Addr::of(8, 8, 8, 8),
                ipproto::kIcmp)
          .icmp_echo(0x77, 3)
          .payload_random(32, 5)
          .build();
  const auto parsed = parse_packet(p.bytes());
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->l4, L4Kind::kIcmp);
  EXPECT_EQ(parsed->icmp.type, 8);
  EXPECT_EQ(parsed->icmp.identifier, 0x77);
  // ICMP checksum must validate over the whole ICMP part.
  EXPECT_EQ(internet_checksum(ByteSpan{p.data.data() + parsed->l4_offset,
                                       p.data.size() - parsed->l4_offset}),
            0u);
}

TEST(Builder, Ipv6Udp) {
  Ipv6Addr src, dst;
  src.b[15] = 1;
  dst.b[15] = 2;
  PacketBuilder b;
  const Packet p = b.eth(MacAddr::from_index(1), MacAddr::from_index(2))
                       .ipv6(src, dst, ipproto::kUdp)
                       .udp(9999, 8888)
                       .payload_random(40, 6)
                       .build();
  const auto parsed = parse_packet(p.bytes());
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->l3, L3Kind::kIpv6);
  EXPECT_EQ(parsed->l4, L4Kind::kUdp);
  EXPECT_EQ(parsed->ipv6.payload_length,
            p.size() - EthHeader::kSize - Ipv6Header::kSize);
}

TEST(Builder, LayeringErrors) {
  PacketBuilder b;
  EXPECT_THROW(b.udp(1, 2), std::logic_error);
  PacketBuilder b2;
  EXPECT_THROW(b2.vlan(5), std::logic_error);
  PacketBuilder b3;
  EXPECT_THROW(b3.build(), std::logic_error);
}

TEST(Builder, PadToFrameRejectsOutOfRange) {
  PacketBuilder b;
  b.eth(MacAddr::from_index(1), MacAddr::from_index(2));
  EXPECT_THROW(b.pad_to_frame(32), std::invalid_argument);
  EXPECT_THROW(b.pad_to_frame(100000), std::invalid_argument);
}

TEST(Parser, ShortFrameRejected) {
  std::uint8_t buf[10] = {};
  EXPECT_FALSE(parse_packet(ByteSpan{buf, sizeof buf}));
}

TEST(Parser, TruncatedIpStopsAtL2) {
  Packet p = udp_frame(128);
  const auto parsed = parse_packet(ByteSpan{p.data.data(), 20});
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->l3, L3Kind::kNone);
  EXPECT_EQ(parsed->l4, L4Kind::kNone);
}

TEST(Parser, UnknownEthertype) {
  PacketBuilder b;
  Packet p = b.eth(MacAddr::from_index(1), MacAddr::from_index(2), 0x88B5)
                 .payload_random(60, 1)
                 .build();
  const auto parsed = parse_packet(p.bytes());
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->l3, L3Kind::kNone);
  EXPECT_EQ(parsed->payload_offset, EthHeader::kSize);
}

TEST(Packet, Describe) {
  const Packet p = udp_frame(128);
  const std::string d = describe(p);
  EXPECT_NE(d.find("10.0.0.1"), std::string::npos);
  EXPECT_NE(d.find("udp"), std::string::npos);
}

// Parameterized sweep: every legal frame size builds + parses + checksums.
class FrameSizeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FrameSizeSweep, BuildsConsistentFrame) {
  const std::size_t size = GetParam();
  const Packet p = udp_frame(size);
  EXPECT_EQ(p.wire_len(), size);
  const auto parsed = parse_packet(p.bytes());
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->l4, L4Kind::kUdp);
  EXPECT_EQ(parsed->ipv4.total_length,
            size - kEthFcsLen - EthHeader::kSize);
  const ByteSpan hdr{p.data.data() + parsed->l3_offset,
                     parsed->ipv4.header_len()};
  EXPECT_EQ(internet_checksum(hdr), 0u);
}

INSTANTIATE_TEST_SUITE_P(Rfc2544Sizes, FrameSizeSweep,
                         ::testing::Values(64, 65, 128, 256, 512, 1024, 1280,
                                           1518));

TEST(Packet, LineLenIncludesOverheads) {
  const Packet p = udp_frame(64);
  EXPECT_EQ(p.wire_len(), 64u);
  EXPECT_EQ(p.line_len(), 64u + 20u);
}

TEST(Packet, MaxFrameRateMath) {
  // 64 B frames @10G: 10e9 / (84*8) = 14.88 Mpps.
  EXPECT_NEAR(max_frame_rate(64, 10.0), 14'880'952.0, 1.0);
  EXPECT_NEAR(max_frame_rate(1518, 10.0), 812'743.8, 0.5);
}

}  // namespace
}  // namespace osnt::net
