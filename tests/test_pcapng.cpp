// pcapng reader/writer: round trips, multi-interface captures,
// nanosecond resolution, unknown-block tolerance, error paths.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "osnt/core/device.hpp"
#include "osnt/core/measure.hpp"
#include "osnt/net/builder.hpp"
#include "osnt/net/pcapng.hpp"

namespace osnt::net {
namespace {

class PcapngTest : public ::testing::Test {
 protected:
  std::string path_ = (std::filesystem::temp_directory_path() /
                       ("osnt_pcapng_" + std::to_string(::getpid()) + "_" +
                        std::string(::testing::UnitTest::GetInstance()
                                        ->current_test_info()
                                        ->name()) +
                        ".pcapng"))
                          .string();

  void TearDown() override { std::remove(path_.c_str()); }

  static Packet frame(std::size_t size) {
    PacketBuilder b;
    return b.eth(MacAddr::from_index(1), MacAddr::from_index(2))
        .ipv4(Ipv4Addr::of(10, 0, 0, 1), Ipv4Addr::of(10, 0, 1, 1),
              ipproto::kUdp)
        .udp(1024, 5001)
        .pad_to_frame(size)
        .build();
  }
};

TEST_F(PcapngTest, NanosecondRoundTrip) {
  {
    PcapngWriter w{path_};
    w.write(0, 1'234'567'890'123ull, frame(128).bytes());
    w.write(0, 1'234'567'890'999ull, frame(256).bytes());
    EXPECT_EQ(w.records_written(), 2u);
  }
  const auto recs = PcapngReader::read_all(path_);
  ASSERT_EQ(recs.size(), 2u);
  EXPECT_EQ(recs[0].ts_nanos, 1'234'567'890'123ull);
  EXPECT_EQ(recs[0].data.size(), 124u);
  EXPECT_EQ(recs[1].ts_nanos, 1'234'567'890'999ull);
  EXPECT_EQ(recs[1].orig_len, 252u);
}

TEST_F(PcapngTest, MultiInterface) {
  {
    PcapngWriter w{path_, {"port0", "port1", "port2"}};
    EXPECT_EQ(w.interface_count(), 3u);
    w.write(2, 100, frame(64).bytes());
    w.write(0, 200, frame(64).bytes());
  }
  PcapngReader r{path_};
  auto a = r.next();
  ASSERT_TRUE(a);
  EXPECT_EQ(a->interface_id, 2u);
  auto b = r.next();
  ASSERT_TRUE(b);
  EXPECT_EQ(b->interface_id, 0u);
  EXPECT_FALSE(r.next());
  EXPECT_EQ(r.interface_count(), 3u);
}

TEST_F(PcapngTest, SnappedOrigLenPreserved) {
  {
    PcapngWriter w{path_};
    const Packet p = frame(1518);
    Bytes cut(p.data.begin(), p.data.begin() + 64);
    w.write(0, 42, ByteSpan{cut.data(), cut.size()}, 1514);
  }
  const auto recs = PcapngReader::read_all(path_);
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_EQ(recs[0].data.size(), 64u);
  EXPECT_EQ(recs[0].orig_len, 1514u);
}

TEST_F(PcapngTest, UnknownBlocksSkipped) {
  {
    PcapngWriter w{path_};
    w.write(0, 7, frame(64).bytes());
  }
  // Append a custom block (type 0x0BAD) by hand.
  {
    std::FILE* f = std::fopen(path_.c_str(), "ab");
    ASSERT_NE(f, nullptr);
    std::uint8_t blk[16];
    store_le32(blk, 0x0BAD);
    store_le32(blk + 4, 16);
    store_le32(blk + 8, 0xDEADBEEF);
    store_le32(blk + 12, 16);
    std::fwrite(blk, 1, 16, f);
    std::fclose(f);
  }
  {
    PcapngWriter dummy{path_ + ".2"};  // unrelated
  }
  std::remove((path_ + ".2").c_str());
  const auto recs = PcapngReader::read_all(path_);
  EXPECT_EQ(recs.size(), 1u);  // the custom block was skipped silently
}

TEST_F(PcapngTest, WriterRejectsBadInterface) {
  PcapngWriter w{path_, {"only"}};
  EXPECT_THROW(w.write(1, 0, frame(64).bytes()), std::invalid_argument);
  EXPECT_THROW(PcapngWriter(path_ + ".x", {}), std::invalid_argument);
}

TEST_F(PcapngTest, ReaderRejectsGarbage) {
  {
    std::FILE* f = std::fopen(path_.c_str(), "wb");
    const char junk[] = "this is not a pcapng file at all.....";
    std::fwrite(junk, 1, sizeof junk, f);
    std::fclose(f);
  }
  EXPECT_THROW(PcapngReader{path_}, std::runtime_error);
  EXPECT_THROW(PcapngReader{"/nonexistent/x.pcapng"}, std::runtime_error);
}

TEST_F(PcapngTest, PayloadBytesIdentical) {
  const Packet p = frame(333);
  {
    PcapngWriter w{path_};
    w.write(0, 5, p.bytes());
  }
  const auto recs = PcapngReader::read_all(path_);
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_EQ(recs[0].data, p.data);
}

TEST_F(PcapngTest, ManyRecordsStreamCleanly) {
  {
    PcapngWriter w{path_, {"a", "b"}};
    for (std::uint32_t i = 0; i < 500; ++i)
      w.write(i % 2, i * 1000ull, frame(64 + (i % 64)).bytes());
  }
  PcapngReader r{path_};
  std::size_t n = 0;
  while (auto rec = r.next()) {
    EXPECT_EQ(rec->ts_nanos, n * 1000ull);
    EXPECT_EQ(rec->interface_id, n % 2);
    ++n;
  }
  EXPECT_EQ(n, 500u);
}

TEST_F(PcapngTest, HostCaptureExportKeepsPortAttribution) {
  sim::Engine eng;
  core::OsntDevice dev{eng};
  hw::connect(dev.port(0), dev.port(1));
  hw::connect(dev.port(2), dev.port(3));
  for (std::size_t p : {std::size_t{0}, std::size_t{2}}) {
    gen::TxConfig txc;
    txc.rate = gen::RateSpec::pps(100'000);
    auto& tx = dev.configure_tx(p, txc);
    core::TrafficSpec spec;
    spec.frame_count = 20;
    spec.seed = p + 1;
    tx.set_source(core::make_source(spec));
    tx.start();
  }
  eng.run();
  dev.capture().write_pcapng(path_, dev.num_ports());
  const auto recs = PcapngReader::read_all(path_);
  ASSERT_EQ(recs.size(), 40u);
  int if1 = 0, if3 = 0;
  for (const auto& r : recs) {
    if (r.interface_id == 1) ++if1;
    if (r.interface_id == 3) ++if3;
  }
  EXPECT_EQ(if1, 20);
  EXPECT_EQ(if3, 20);
}

}  // namespace
}  // namespace osnt::net
