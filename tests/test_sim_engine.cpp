// Discrete-event engine invariants: ordering, determinism, cancellation.
#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "osnt/sim/engine.hpp"

namespace osnt::sim {
namespace {

TEST(Engine, StartsAtZero) {
  Engine e;
  EXPECT_EQ(e.now(), 0);
  EXPECT_TRUE(e.empty());
}

TEST(Engine, EventsFireInTimeOrder) {
  Engine e;
  std::vector<int> order;
  e.schedule_at(300, [&] { order.push_back(3); });
  e.schedule_at(100, [&] { order.push_back(1); });
  e.schedule_at(200, [&] { order.push_back(2); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(e.now(), 300);
}

TEST(Engine, SameTimeIsFifo) {
  Engine e;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i)
    e.schedule_at(50, [&order, i] { order.push_back(i); });
  e.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Engine, ScheduleInPastClampsToNow) {
  Engine e;
  e.schedule_at(100, [] {});
  e.run();
  Picos fired_at = -1;
  e.schedule_at(50, [&] { fired_at = e.now(); });
  e.run();
  EXPECT_EQ(fired_at, 100);
}

TEST(Engine, NestedScheduling) {
  Engine e;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) e.schedule_in(10, recurse);
  };
  e.schedule_at(0, recurse);
  e.run();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(e.now(), 40);
}

TEST(Engine, CancelPreventsFiring) {
  Engine e;
  bool fired = false;
  const EventId id = e.schedule_at(10, [&] { fired = true; });
  EXPECT_TRUE(e.cancel(id));
  e.run();
  EXPECT_FALSE(fired);
}

TEST(Engine, CancelTwiceFails) {
  Engine e;
  const EventId id = e.schedule_at(10, [] {});
  EXPECT_TRUE(e.cancel(id));
  EXPECT_FALSE(e.cancel(id));
}

TEST(Engine, CancelAfterFireFails) {
  Engine e;
  const EventId id = e.schedule_at(10, [] {});
  e.run();
  EXPECT_FALSE(e.cancel(id));
}

TEST(Engine, CancelDefaultIdFails) {
  Engine e;
  EXPECT_FALSE(e.cancel(EventId{}));
}

TEST(Engine, RunUntilAdvancesExactly) {
  Engine e;
  int fired = 0;
  e.schedule_at(100, [&] { ++fired; });
  e.schedule_at(200, [&] { ++fired; });
  e.schedule_at(300, [&] { ++fired; });
  e.run_until(200);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(e.now(), 200);
  EXPECT_EQ(e.pending(), 1u);
  e.run_until(1000);
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(e.now(), 1000);
}

TEST(Engine, RunUntilWithCancelledHead) {
  Engine e;
  bool fired = false;
  const EventId id = e.schedule_at(50, [&] { fired = true; });
  e.schedule_at(150, [] {});
  e.cancel(id);
  e.run_until(100);
  EXPECT_FALSE(fired);
  EXPECT_EQ(e.now(), 100);
  EXPECT_EQ(e.pending(), 1u);
}

TEST(Engine, PendingCountsLiveEventsOnly) {
  Engine e;
  const EventId a = e.schedule_at(10, [] {});
  e.schedule_at(20, [] {});
  EXPECT_EQ(e.pending(), 2u);
  e.cancel(a);
  EXPECT_EQ(e.pending(), 1u);
  e.run();
  EXPECT_EQ(e.pending(), 0u);
  EXPECT_TRUE(e.empty());
}

TEST(Engine, EventsProcessedCounter) {
  Engine e;
  for (int i = 0; i < 7; ++i) e.schedule_at(i, [] {});
  e.run();
  EXPECT_EQ(e.events_processed(), 7u);
}

TEST(Engine, StaleIdCannotCancelSlotReuse) {
  // After an event fires, its slot goes back on the free list and its
  // generation is bumped. A new event reusing the slot must be immune to
  // the old (now stale) EventId.
  Engine e;
  const EventId first = e.schedule_at(10, [] {});
  e.run();  // fires `first`; its slot is recycled

  // The engine hands out slots LIFO, so this reuses the same slot.
  bool fired = false;
  const EventId second = e.schedule_at(20, [&] { fired = true; });
  EXPECT_NE(first, second);
  EXPECT_FALSE(e.cancel(first));  // stale id: different generation
  EXPECT_EQ(e.pending(), 1u);
  e.run();
  EXPECT_TRUE(fired);
}

TEST(Engine, StaleIdAfterCancelCannotCancelSlotReuse) {
  // Same as above, but the first occupant was cancelled rather than fired.
  Engine e;
  const EventId first = e.schedule_at(10, [] { FAIL(); });
  EXPECT_TRUE(e.cancel(first));
  e.run_until(15);  // drains the cancelled entry, recycling the slot

  bool fired = false;
  e.schedule_at(20, [&] { fired = true; });
  EXPECT_FALSE(e.cancel(first));
  e.run();
  EXPECT_TRUE(fired);
}

TEST(Engine, CancelFromWithinRunningEventReturnsFalse) {
  // An event cancelling itself while running is a no-op: it already left
  // the pending set, exactly as if it had finished firing.
  Engine e;
  EventId self;
  bool saw_false = false;
  self = e.schedule_at(5, [&] { saw_false = !e.cancel(self); });
  e.run();
  EXPECT_TRUE(saw_false);
  EXPECT_EQ(e.events_processed(), 1u);
  EXPECT_EQ(e.pending(), 0u);
}

TEST(Engine, FifoOrderSurvivesSlabGrowth) {
  // More same-time events than one 256-entry slab block: growth must not
  // disturb FIFO order among equal timestamps.
  constexpr int kEvents = 1000;
  Engine e;
  std::vector<int> order;
  order.reserve(kEvents);
  for (int i = 0; i < kEvents; ++i) {
    e.schedule_at(42, [&order, i] { order.push_back(i); });
  }
  e.run();
  ASSERT_EQ(order.size(), static_cast<std::size_t>(kEvents));
  for (int i = 0; i < kEvents; ++i) EXPECT_EQ(order[i], i);
}

TEST(Engine, EventBudgetKillsLivelock) {
  Engine e;
  e.set_event_budget(1000);
  // A self-rescheduling event at a fixed time: sim time never advances,
  // so only the event budget can stop this.
  std::uint64_t fired = 0;
  std::function<void()> self = [&] {
    ++fired;
    e.schedule_at(e.now(), [&] { self(); });
  };
  e.schedule_at(0, [&] { self(); });
  try {
    e.run();
    FAIL() << "livelock was not killed";
  } catch (const WatchdogError& err) {
    EXPECT_EQ(err.kind(), WatchdogKind::kEventBudget);
  }
  EXPECT_EQ(e.events_processed(), 1000u);
  EXPECT_EQ(fired, 1000u);
}

TEST(Engine, BudgetExactlySufficientDoesNotTrip) {
  Engine e;
  e.set_event_budget(10);
  int fired = 0;
  for (int i = 0; i < 10; ++i) e.schedule_at(i, [&] { ++fired; });
  EXPECT_NO_THROW(e.run());
  EXPECT_EQ(fired, 10);
}

TEST(Engine, WatchdogScopeIsAdoptedByNewEngines) {
  {
    const WatchdogScope wd{WatchdogConfig{.event_budget = 5}};
    Engine e;  // constructed inside the scope → inherits the budget
    EXPECT_EQ(e.event_budget(), 5u);
    for (int i = 0; i < 20; ++i) e.schedule_at(i, [] {});
    EXPECT_THROW(e.run(), WatchdogError);
  }
  Engine outside;  // scope restored → unlimited again
  EXPECT_EQ(outside.event_budget(), 0u);
  for (int i = 0; i < 20; ++i) outside.schedule_at(i, [] {});
  EXPECT_NO_THROW(outside.run());
}

TEST(Engine, WallClockDeadlineKillsRunawayRun) {
  Engine e;
  e.set_wall_deadline_in(50);  // ms
  std::function<void()> self = [&] { e.schedule_at(e.now(), [&] { self(); }); };
  e.schedule_at(0, [&] { self(); });
  try {
    e.run();
    FAIL() << "wall deadline did not fire";
  } catch (const WatchdogError& err) {
    EXPECT_EQ(err.kind(), WatchdogKind::kWallClock);
  }
}

TEST(Engine, DeterministicInterleaving) {
  // Two runs with the same schedule produce identical orders.
  auto run_once = [] {
    Engine e;
    std::vector<int> order;
    for (int i = 0; i < 50; ++i) {
      e.schedule_at((i * 37) % 100, [&order, i] { order.push_back(i); });
    }
    e.run();
    return order;
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace osnt::sim
