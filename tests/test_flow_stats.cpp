// Host-side flow statistics collector over (possibly thinned) captures.
#include <gtest/gtest.h>

#include "osnt/core/device.hpp"
#include "osnt/core/measure.hpp"
#include "osnt/mon/flow_stats.hpp"
#include "osnt/net/builder.hpp"

namespace osnt::mon {
namespace {

CaptureRecord make_record(std::uint16_t sport, std::uint32_t orig_len,
                          double ts_seconds) {
  net::PacketBuilder b;
  const auto pkt =
      b.eth(net::MacAddr::from_index(1), net::MacAddr::from_index(2))
          .ipv4(net::Ipv4Addr::of(10, 0, 0, 1), net::Ipv4Addr::of(10, 0, 1, 1),
                net::ipproto::kUdp)
          .udp(sport, 5001)
          .build();
  CaptureRecord rec;
  rec.data = pkt.data;
  rec.orig_len = orig_len;
  rec.ts = tstamp::Timestamp::from_seconds(ts_seconds);
  return rec;
}

TEST(FlowStats, AccumulatesPerFlow) {
  FlowStatsCollector c;
  c.add(make_record(1000, 100, 1.0));
  c.add(make_record(1000, 200, 2.0));
  c.add(make_record(2000, 50, 1.5));
  EXPECT_EQ(c.flow_count(), 2u);
  const net::FiveTuple key{net::Ipv4Addr::of(10, 0, 0, 1),
                           net::Ipv4Addr::of(10, 0, 1, 1), 1000, 5001,
                           net::ipproto::kUdp};
  const auto* f = c.find(key);
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->packets, 2u);
  EXPECT_EQ(f->bytes, 300u);
  EXPECT_NEAR(f->duration_seconds(), 1.0, 1e-6);
  EXPECT_NEAR(f->mean_rate_bps(), 2400.0, 1.0);
}

TEST(FlowStats, TopByBytesOrdersHeaviestFirst) {
  FlowStatsCollector c;
  c.add(make_record(1000, 100, 1.0));
  c.add(make_record(2000, 500, 1.0));
  c.add(make_record(3000, 300, 1.0));
  const auto top = c.top_by_bytes();
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].key.src_port, 2000);
  EXPECT_EQ(top[1].key.src_port, 3000);
  EXPECT_EQ(top[2].key.src_port, 1000);
  EXPECT_EQ(c.top_by_bytes(2).size(), 2u);
}

TEST(FlowStats, NonIpCountsUnclassified) {
  FlowStatsCollector c;
  net::PacketBuilder b;
  const auto arp = b.eth(net::MacAddr::from_index(1), net::MacAddr::broadcast())
                       .arp(1, net::MacAddr::from_index(1),
                            net::Ipv4Addr::of(1, 1, 1, 1), net::MacAddr{},
                            net::Ipv4Addr::of(1, 1, 1, 2))
                       .build();
  CaptureRecord rec;
  rec.data = arp.data;
  rec.orig_len = static_cast<std::uint32_t>(arp.size());
  c.add(rec);
  EXPECT_EQ(c.flow_count(), 0u);
  EXPECT_EQ(c.unclassified(), 1u);
}

TEST(FlowStats, WorksOnThinnedCaptureEndToEnd) {
  // Snap to 64 B: the 5-tuple survives, and byte counts use orig_len.
  sim::Engine eng;
  core::OsntDevice osnt{eng};
  hw::connect(osnt.port(0), osnt.port(1));
  osnt.rx(1).cutter().set_snap_len(64);

  core::TrafficSpec spec;
  spec.rate = gen::RateSpec::gbps(1.0);
  spec.frame_size = 1024;
  spec.flow_count = 4;
  const auto r = core::run_capture_test(eng, osnt, 0, 1, spec, kPicosPerMilli);
  ASSERT_GT(r.captured, 0u);

  FlowStatsCollector c;
  c.add_all(osnt.capture());
  EXPECT_EQ(c.flow_count(), 4u);
  std::uint64_t total_bytes = 0, total_pkts = 0;
  for (const auto& f : c.top_by_bytes()) {
    total_bytes += f.bytes;
    total_pkts += f.packets;
  }
  EXPECT_EQ(total_pkts, r.captured);
  // Bytes reflect the original 1020 B frames, not the 64 B snaps.
  EXPECT_EQ(total_bytes, r.captured * 1020u);
}

TEST(FlowStats, ClearResets) {
  FlowStatsCollector c;
  c.add(make_record(1000, 100, 1.0));
  c.clear();
  EXPECT_EQ(c.flow_count(), 0u);
  EXPECT_EQ(c.unclassified(), 0u);
}

// ---------------------------------------------- TCP sequence regression

CaptureRecord tcp_record(std::uint32_t seq, double ts_seconds,
                         std::size_t snap = 0) {
  net::PacketBuilder b;
  auto pkt =
      b.eth(net::MacAddr::from_index(1), net::MacAddr::from_index(2))
          .ipv4(net::Ipv4Addr::of(10, 0, 0, 1), net::Ipv4Addr::of(10, 0, 1, 1),
                net::ipproto::kTcp)
          .tcp(1234, 80, seq, 0, net::TcpFlags::kAck)
          .build();
  CaptureRecord rec;
  rec.orig_len = static_cast<std::uint32_t>(pkt.data.size());
  if (snap != 0 && snap < pkt.data.size()) pkt.data.resize(snap);
  rec.data = std::move(pkt.data);
  rec.ts = tstamp::Timestamp::from_seconds(ts_seconds);
  return rec;
}

const net::FiveTuple kTcpKey{net::Ipv4Addr::of(10, 0, 0, 1),
                             net::Ipv4Addr::of(10, 0, 1, 1), 1234, 80,
                             net::ipproto::kTcp};

TEST(FlowStats, InOrderTcpShowsNoRegressions) {
  FlowStatsCollector c;
  for (std::uint32_t i = 0; i < 5; ++i) {
    c.add(tcp_record(1000 + i * 100, 1.0 + i));
  }
  const auto* f = c.find(kTcpKey);
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->tcp_segments, 5u);
  EXPECT_EQ(f->seq_regressions, 0u);
  EXPECT_FALSE(f->reordering_seen());
  EXPECT_EQ(f->highest_seq, 1400u);
}

TEST(FlowStats, ReorderedAndRetransmittedSegmentsAreCounted) {
  FlowStatsCollector c;
  // 1000, 1300 (jumps a hole), 1100 and 1200 arrive late, then 1400.
  for (const std::uint32_t seq : {1000u, 1300u, 1100u, 1200u, 1400u}) {
    c.add(tcp_record(seq, 1.0));
  }
  const auto* f = c.find(kTcpKey);
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->tcp_segments, 5u);
  EXPECT_EQ(f->seq_regressions, 2u);  // 1100 and 1200 are below 1300
  EXPECT_TRUE(f->reordering_seen());
  EXPECT_EQ(f->highest_seq, 1400u);
}

TEST(FlowStats, SequenceTrackingIsWrapAware) {
  FlowStatsCollector c;
  // Forward progress across the 2^32 boundary must not read as a
  // regression; a genuine step back across it must.
  c.add(tcp_record(0xFFFFFF00u, 1.0));
  c.add(tcp_record(0x00000100u, 1.1));  // forward across the wrap
  c.add(tcp_record(0xFFFFFF80u, 1.2));  // genuinely behind
  const auto* f = c.find(kTcpKey);
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->seq_regressions, 1u);
  EXPECT_EQ(f->highest_seq, 0x00000100u);
}

TEST(FlowStats, HardSnappedFramesSkipSequenceTracking) {
  FlowStatsCollector c;
  // The parser refuses a truncated TCP header outright, so a 42-byte
  // snap (enough for UDP, 12 bytes short for TCP) cannot even be
  // classified — it lands in `unclassified` rather than producing a
  // flow with bogus sequence state.
  c.add(tcp_record(1000, 1.0, /*snap=*/42));
  c.add(tcp_record(900, 1.1, /*snap=*/42));
  EXPECT_EQ(c.find(kTcpKey), nullptr);
  EXPECT_EQ(c.flow_count(), 0u);
  EXPECT_EQ(c.unclassified(), 2u);

  // A 54-byte snap keeps the full fixed TCP header: classification and
  // sequence tracking both work on the thinned capture.
  c.add(tcp_record(1000, 2.0, /*snap=*/54));
  c.add(tcp_record(900, 2.1, /*snap=*/54));
  const auto* f = c.find(kTcpKey);
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->packets, 2u);
  EXPECT_EQ(f->tcp_segments, 2u);
  EXPECT_EQ(f->seq_regressions, 1u);
}

TEST(FlowStats, UdpFlowsNeverTouchSequenceFields) {
  FlowStatsCollector c;
  c.add(make_record(1000, 100, 1.0));
  c.add(make_record(1000, 100, 2.0));
  const net::FiveTuple key{net::Ipv4Addr::of(10, 0, 0, 1),
                           net::Ipv4Addr::of(10, 0, 1, 1), 1000, 5001,
                           net::ipproto::kUdp};
  const auto* f = c.find(key);
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->tcp_segments, 0u);
  EXPECT_FALSE(f->reordering_seen());
}

}  // namespace
}  // namespace osnt::mon
