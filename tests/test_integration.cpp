// End-to-end integration: OSNT tester around a legacy switch — the
// demo's Part I scenario — validating the canonical behavioural shapes.
#include <gtest/gtest.h>

#include "osnt/core/device.hpp"
#include "osnt/core/measure.hpp"
#include "osnt/dut/legacy_switch.hpp"
#include "osnt/dut/openflow_switch.hpp"
#include "osnt/net/builder.hpp"

namespace osnt {
namespace {

struct PartOneBench {
  sim::Engine eng;
  core::OsntDevice osnt{eng};
  dut::LegacySwitch sw;

  explicit PartOneBench(dut::LegacySwitchConfig cfg = dut::LegacySwitchConfig())
      : sw(eng, cfg) {
    // OSNT port 0 → switch port 0; switch port 1 → OSNT port 1 (Figure 2).
    hw::connect(osnt.port(0), sw.port(0));
    hw::connect(osnt.port(1), sw.port(1));
    prime_mac_learning();
  }

  /// Teach the switch where the monitor-side MAC lives so probe traffic
  /// unicasts instead of flooding.
  void prime_mac_learning() {
    net::PacketBuilder b;
    auto hello = b.eth(net::MacAddr::from_index(2), net::MacAddr::from_index(1))
                     .ipv4(net::Ipv4Addr::of(10, 0, 1, 1),
                           net::Ipv4Addr::of(10, 0, 0, 1), net::ipproto::kUdp)
                     .udp(5001, 1024)
                     .build();
    (void)osnt.port(1).tx().transmit(std::move(hello));
    eng.run();
  }
};

TEST(PartOne, LatencyThroughSwitchAtLowLoad) {
  PartOneBench b;
  core::TrafficSpec spec;
  spec.rate = gen::RateSpec::line_rate(0.1);
  spec.frame_size = 256;
  const auto r = core::run_capture_test(b.eng, b.osnt, 0, 1, spec,
                                        2 * kPicosPerMilli);
  EXPECT_GT(r.tx_frames, 50u);
  EXPECT_EQ(r.loss_fraction(), 0.0);
  ASSERT_GT(r.latency_ns.count(), 0u);
  // Latency ≈ pipeline (650 ns) + frame serialization terms; sub-2 µs.
  EXPECT_GT(r.latency_ns.quantile(0.5), 650.0);
  EXPECT_LT(r.latency_ns.quantile(0.5), 2000.0);
}

TEST(PartOne, LatencyGrowsWithLoad) {
  // Two ingress ports converging on one egress port: queueing appears as
  // offered load crosses the egress capacity.
  sim::Engine eng;
  core::OsntDevice osnt{eng};
  dut::LegacySwitch sw{eng};
  hw::connect(osnt.port(0), sw.port(0));
  hw::connect(osnt.port(2), sw.port(2));
  hw::connect(osnt.port(1), sw.port(1));
  // Prime learning for the egress MAC.
  {
    net::PacketBuilder b;
    (void)osnt.port(1).tx().transmit(
        b.eth(net::MacAddr::from_index(2), net::MacAddr::from_index(1))
            .ipv4(net::Ipv4Addr::of(10, 0, 1, 1), net::Ipv4Addr::of(10, 0, 0, 1),
                  net::ipproto::kUdp)
            .udp(5001, 1024)
            .build());
    eng.run();
  }
  // Background load from port 2 to the same egress at 80% line rate.
  gen::TxConfig bg_cfg;
  bg_cfg.rate = gen::RateSpec::line_rate(0.8);
  auto& bg = osnt.configure_tx(2, bg_cfg);
  core::TrafficSpec bg_spec;
  bg_spec.dst_port = 6001;  // distinct from the probe stream
  bg_spec.frame_size = 1518;
  bg.set_source(core::make_source(bg_spec));
  bg.start();

  core::TrafficSpec probe;
  probe.rate = gen::RateSpec::line_rate(0.5);
  probe.frame_size = 256;
  const auto r =
      core::run_capture_test(eng, osnt, 0, 1, probe, 2 * kPicosPerMilli);
  bg.stop();
  ASSERT_GT(r.latency_ns.count(), 0u);
  // 0.8 + 0.5 > 1.0 of egress: median latency must sit well above the
  // unloaded ~1 µs, and drops appear.
  EXPECT_GT(r.latency_ns.quantile(0.5), 5'000.0);
  EXPECT_GT(r.loss_fraction(), 0.0);
}

TEST(PartOne, ThroughputIsWireRateForFastSwitch) {
  PartOneBench b;
  core::TrafficSpec spec;
  spec.rate = gen::RateSpec::line_rate(1.0);
  spec.frame_size = 64;
  const auto r = core::run_capture_test(b.eng, b.osnt, 0, 1, spec,
                                        kPicosPerMilli);
  EXPECT_NEAR(r.offered_gbps, 10.0, 0.05);
  EXPECT_EQ(r.loss_fraction(), 0.0);
  EXPECT_NEAR(r.delivered_gbps, 10.0, 0.1);
}

TEST(PartOne, SequenceReportDetectsSwitchDrops) {
  dut::LegacySwitchConfig cfg;
  cfg.queue_bytes = 4 * 1024;
  sim::Engine eng;
  core::OsntDevice osnt{eng};
  dut::LegacySwitch sw{eng, cfg};
  hw::connect(osnt.port(0), sw.port(0));
  hw::connect(osnt.port(2), sw.port(2));
  hw::connect(osnt.port(1), sw.port(1));
  {
    net::PacketBuilder b;
    (void)osnt.port(1).tx().transmit(
        b.eth(net::MacAddr::from_index(2), net::MacAddr::from_index(1))
            .ipv4(net::Ipv4Addr::of(10, 0, 1, 1), net::Ipv4Addr::of(10, 0, 0, 1),
                  net::ipproto::kUdp)
            .udp(5001, 1024)
            .build());
    eng.run();
  }
  gen::TxConfig bg_cfg;
  bg_cfg.rate = gen::RateSpec::line_rate(0.9);
  auto& bg = osnt.configure_tx(2, bg_cfg);
  core::TrafficSpec bg_spec;
  bg_spec.dst_port = 6001;  // distinct from the probe stream
  bg_spec.frame_size = 1518;
  bg_spec.seed = 5;
  bg.set_source(core::make_source(bg_spec));
  bg.start();

  core::TrafficSpec probe;
  probe.rate = gen::RateSpec::line_rate(0.9);
  probe.frame_size = 512;
  const auto r =
      core::run_capture_test(eng, osnt, 0, 1, probe, 2 * kPicosPerMilli);
  bg.stop();
  EXPECT_GT(r.loss_fraction(), 0.0);
  const auto rep =
      osnt.capture().sequence_report(tstamp::kDefaultEmbedOffset, 1);
  EXPECT_GT(rep.lost, 0u);
}

TEST(PartTwo, OpenFlowSwitchForwardsAtLineRate) {
  // With a pre-installed exact rule, the OF data plane is a fixed-latency
  // pipeline: it must carry 64 B frames at full line rate with zero loss.
  sim::Engine eng;
  core::OsntDevice osnt{eng};
  openflow::ControlChannel chan{eng};
  dut::OpenFlowSwitchConfig sw_cfg;
  sw_cfg.latency_jitter_ns = 0;
  dut::OpenFlowSwitch sw{eng, chan, sw_cfg};
  hw::connect(osnt.port(0), sw.port(0));
  hw::connect(osnt.port(1), sw.port(1));

  openflow::FlowMod fm;
  fm.match = openflow::OfMatch::exact_5tuple(
      (10u << 24) | 1, (10u << 24) | (1 << 8) | 1, net::ipproto::kUdp, 1024,
      5001);
  fm.actions = {openflow::ActionOutput{2}};
  chan.controller().send(fm);
  eng.run();  // commit

  core::TrafficSpec spec;
  spec.rate = gen::RateSpec::line_rate(1.0);
  spec.frame_size = 64;
  const auto r = core::run_capture_test(eng, osnt, 0, 1, spec, kPicosPerMilli);
  EXPECT_NEAR(r.offered_gbps, 10.0, 0.05);
  EXPECT_EQ(r.loss_fraction(), 0.0);
  EXPECT_EQ(sw.table_misses(), 0u);
  ASSERT_GT(r.latency_ns.count(), 1000u);
  // Fixed pipeline: jitter collapses to quantization.
  EXPECT_LT(r.jitter_ns.quantile(0.99), 2 * tstamp::kTickNanos + 0.1);
}

TEST(PartOne, FloodDuplicatesDetectedByHash) {
  // Unknown-destination flooding duplicates each frame onto every port;
  // the capture-side hash identifies the copies even though the monitor
  // snapped them to 64 B.
  sim::Engine eng;
  core::OsntDevice osnt{eng};
  dut::LegacySwitch sw{eng};
  hw::connect(osnt.port(0), sw.port(0));
  hw::connect(osnt.port(1), sw.port(1));
  hw::connect(osnt.port(2), sw.port(2));
  osnt.rx(1).cutter().set_snap_len(64);
  osnt.rx(2).cutter().set_snap_len(64);

  gen::TxConfig txc;
  txc.rate = gen::RateSpec::pps(10'000);
  auto& tx = osnt.configure_tx(0, txc);
  core::TrafficSpec spec;
  spec.frame_count = 100;
  spec.frame_size = 512;
  tx.set_source(core::make_source(spec));
  tx.start();
  eng.run();

  // Every frame was flooded to both monitor ports.
  EXPECT_EQ(osnt.capture().size(), 200u);
  const auto rep = osnt.capture().duplicate_report();
  EXPECT_EQ(rep.unique, 100u);
  EXPECT_EQ(rep.duplicates, 100u);
  EXPECT_EQ(rep.multi_port, 100u);
}

TEST(PartOne, TimestampPrecisionSurvivesDut) {
  // Constant-latency DUT ⇒ measured jitter collapses to the 6.25 ns
  // quantization, demonstrating the measurement precision claim.
  dut::LegacySwitchConfig cfg;
  cfg.latency_jitter_ns = 0;
  PartOneBench b{cfg};
  core::TrafficSpec spec;
  spec.rate = gen::RateSpec::line_rate(0.05);
  spec.frame_size = 512;
  const auto r = core::run_capture_test(b.eng, b.osnt, 0, 1, spec,
                                        2 * kPicosPerMilli);
  ASSERT_GT(r.jitter_ns.count(), 20u);
  EXPECT_LT(r.jitter_ns.quantile(0.99), 2 * tstamp::kTickNanos + 0.1);
}

}  // namespace
}  // namespace osnt
