// Triggered capture windows, link flap failure injection, and the
// packet_out latency module.
#include <gtest/gtest.h>

#include "osnt/core/device.hpp"
#include "osnt/core/measure.hpp"
#include "osnt/net/builder.hpp"
#include "osnt/net/flow.hpp"
#include "osnt/oflops/context.hpp"
#include "osnt/oflops/packet_out_latency.hpp"

namespace osnt {
namespace {

// ----------------------------------------------------- triggered capture

struct TriggerBench {
  sim::Engine eng;
  core::OsntDevice osnt{eng};

  TriggerBench() { hw::connect(osnt.port(0), osnt.port(1)); }

  /// Send `n` background frames, one marker frame (dst port 9999), then
  /// `m` more background frames.
  void send_pattern(std::size_t n, std::size_t m) {
    auto send = [&](std::uint16_t dport) {
      net::PacketBuilder b;
      (void)osnt.port(0).tx().transmit(
          b.eth(net::MacAddr::from_index(1), net::MacAddr::from_index(2))
              .ipv4(net::Ipv4Addr::of(10, 0, 0, 1),
                    net::Ipv4Addr::of(10, 0, 1, 1), net::ipproto::kUdp)
              .udp(1024, dport)
              .pad_to_frame(128)
              .build());
    };
    for (std::size_t i = 0; i < n; ++i) send(5001);
    send(9999);  // the trigger event
    for (std::size_t i = 0; i < m; ++i) send(5001);
  }
};

TEST(Trigger, CapturesWindowFromMarker) {
  TriggerBench b;
  mon::FilterRule marker;
  marker.dst_port = 9999;
  b.osnt.rx(1).arm_trigger(marker, 5);  // marker + 4 following
  b.send_pattern(20, 20);
  b.eng.run();
  EXPECT_EQ(b.osnt.rx(1).seen(), 41u);     // monitor saw everything
  EXPECT_EQ(b.osnt.capture().size(), 5u);  // host got only the window
  // First captured record is the marker itself.
  const auto flow = net::extract_flow(
      ByteSpan{b.osnt.capture().records()[0].data.data(),
               b.osnt.capture().records()[0].data.size()});
  ASSERT_TRUE(flow);
  EXPECT_EQ(flow->dst_port, 9999);
  EXPECT_TRUE(b.osnt.rx(1).trigger_fired());
  EXPECT_FALSE(b.osnt.rx(1).trigger_window_open());
}

TEST(Trigger, NeverFiresWithoutMarker) {
  TriggerBench b;
  mon::FilterRule marker;
  marker.dst_port = 7777;  // never sent
  b.osnt.rx(1).arm_trigger(marker, 5);
  b.send_pattern(10, 0);  // pattern includes dport 9999, not 7777...
  b.eng.run();
  // The 9999 marker doesn't match 7777, so nothing is captured.
  EXPECT_EQ(b.osnt.capture().size(), 0u);
  EXPECT_TRUE(b.osnt.rx(1).trigger_armed());
}

TEST(Trigger, RearmCapturesSecondEvent) {
  TriggerBench b;
  mon::FilterRule marker;
  marker.dst_port = 9999;
  b.osnt.rx(1).arm_trigger(marker, 2);
  b.send_pattern(3, 3);
  b.eng.run();
  EXPECT_EQ(b.osnt.capture().size(), 2u);
  b.osnt.rx(1).arm_trigger(marker, 3);
  b.send_pattern(1, 5);
  b.eng.run();
  EXPECT_EQ(b.osnt.capture().size(), 5u);  // 2 + 3
}

TEST(Trigger, DisarmRestoresNormalCapture) {
  TriggerBench b;
  mon::FilterRule marker;
  marker.dst_port = 9999;
  b.osnt.rx(1).arm_trigger(marker, 1);
  b.osnt.rx(1).disarm_trigger();
  b.send_pattern(2, 0);
  b.eng.run();
  EXPECT_EQ(b.osnt.capture().size(), 3u);  // everything (2 bg + marker)
}

// ------------------------------------------------------------- link flap

TEST(LinkFlap, FramesLostWhileDown) {
  sim::Engine eng;
  core::OsntDevice osnt{eng};
  hw::connect(osnt.port(0), osnt.port(1));

  gen::TxConfig txc;
  txc.rate = gen::RateSpec::pps(1'000'000);  // 1 frame/µs
  auto& tx = osnt.configure_tx(0, txc);
  core::TrafficSpec spec;
  tx.set_source(core::make_source(spec));
  tx.start();

  // Pull the fiber from 1 ms to 2 ms.
  eng.schedule_at(kPicosPerMilli, [&] { osnt.port(0).out_link().set_up(false); });
  eng.schedule_at(2 * kPicosPerMilli, [&] { osnt.port(0).out_link().set_up(true); });
  eng.run_until(3 * kPicosPerMilli);
  tx.stop();
  eng.run();

  const auto lost = osnt.port(0).out_link().frames_lost_down();
  EXPECT_NEAR(static_cast<double>(lost), 1000.0, 20.0);  // ~1 ms of frames
  EXPECT_EQ(osnt.rx(1).seen() + lost, tx.frames_sent());
  // Sequence accounting at the host agrees.
  const auto rep =
      osnt.capture().sequence_report(tstamp::kDefaultEmbedOffset, 1);
  EXPECT_EQ(rep.lost, lost);
}

TEST(LinkFlap, RecoversCleanly) {
  sim::Engine eng;
  hw::EthPort a{eng}, b{eng};
  hw::connect(a, b);
  a.out_link().set_up(false);
  net::PacketBuilder pb;
  (void)a.tx().transmit(pb.eth(net::MacAddr::from_index(1),
                               net::MacAddr::from_index(2))
                            .payload_random(60, 1)
                            .build());
  eng.run();
  EXPECT_EQ(b.rx().frames_received(), 0u);
  a.out_link().set_up(true);
  (void)a.tx().transmit(pb.eth(net::MacAddr::from_index(1),
                               net::MacAddr::from_index(2))
                            .payload_random(60, 1)
                            .build());
  eng.run();
  EXPECT_EQ(b.rx().frames_received(), 1u);
}

// ---------------------------------------------------- packet_out module

TEST(PacketOut, ControllerToWireLatency) {
  oflops::Testbed tb;
  oflops::PacketOutLatencyConfig cfg;
  cfg.count = 40;
  oflops::PacketOutLatencyModule mod{cfg};
  const auto rep = tb.ctx.run(mod, 120 * kPicosPerSec);
  double sent = 0, got = 0;
  for (const auto& m : rep.scalars) {
    if (m.name == "packet_outs_sent") sent = m.value;
    if (m.name == "frames_observed") got = m.value;
  }
  EXPECT_EQ(sent, 40);
  EXPECT_EQ(got, 40);
  for (const auto& [name, d] : rep.distributions) {
    if (name != "packet_out_latency_us") continue;
    ASSERT_EQ(d.count(), 40u);
    // Channel (50 µs) + agent (~20 µs) + wire: under a millisecond,
    // over the bare channel latency.
    EXPECT_GT(d.quantile(0.5), 60.0);
    EXPECT_LT(d.quantile(0.5), 1000.0);
  }
}

}  // namespace
}  // namespace osnt
