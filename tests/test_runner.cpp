// core::Runner: deterministic parallel trial execution. The contract under
// test: results are byte-identical for any job count, every trial is
// attempted, and the first exception in plan order propagates.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "osnt/common/log.hpp"
#include "osnt/common/random.hpp"
#include "osnt/core/device.hpp"
#include "osnt/core/measure.hpp"
#include "osnt/core/repeat.hpp"
#include "osnt/core/rfc2544.hpp"
#include "osnt/core/runner.hpp"

namespace osnt::core {
namespace {

std::size_t hw_jobs() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw != 0 ? hw : 1;
}

/// Deterministic scalar trial: a seeded RNG draw, so any cross-thread
/// interference or reordering shows up as a value mismatch.
Trial seeded_scalar() {
  return scalar_trial([](const TrialPoint& p) {
    Rng rng{p.seed};
    return rng.normal(100.0, 10.0);
  });
}

/// Fake DUT forwarding loss-free up to `capacity` of line rate, in the
/// unified vocabulary.
Trial capacity_dut(double capacity) {
  return [capacity](const TrialPoint& p) {
    TrialStats s;
    s.tx_frames = 10000;
    s.rx_frames = p.load_fraction <= capacity + 1e-12
                      ? 10000
                      : static_cast<std::uint64_t>(10000 * capacity /
                                                   p.load_fraction);
    s.offered_gbps = 10.0 * p.load_fraction;
    return s;
  };
}

/// Real-engine trial: a short capture test on a fresh simulated testbed.
TrialStats sim_trial(const TrialPoint& pt) {
  sim::Engine eng;
  OsntDevice osnt{eng};
  hw::connect(osnt.port(0), osnt.port(1));
  TrafficSpec spec;
  spec.rate = gen::RateSpec::line_rate(pt.load_fraction);
  spec.frame_size = pt.frame_size;
  spec.seed = pt.seed;
  const auto r =
      run_capture_test(eng, osnt, 0, 1, spec, kPicosPerMilli / 5);
  TrialStats s;
  s.tx_frames = r.tx_frames;
  s.rx_frames = r.rx_frames;
  s.offered_gbps = r.offered_gbps;
  s.metric = r.latency_ns.quantile(0.5);
  return s;
}

std::string render_sweep(const std::vector<ThroughputPoint>& pts) {
  std::string out;
  char line[160];
  for (const auto& pt : pts) {
    std::snprintf(line, sizeof line, "%zu %.17g %.17g %.17g %u %.17g\n",
                  pt.frame_size, pt.max_load_fraction, pt.gbps, pt.mpps,
                  pt.trials, pt.latency_at_max_ns.quantile(0.5));
    out += line;
  }
  return out;
}

std::string render_ladder(const std::vector<LossPoint>& pts) {
  std::string out;
  char line[120];
  for (const auto& lp : pts) {
    std::snprintf(line, sizeof line, "%.17g %.17g %.17g\n", lp.load_fraction,
                  lp.loss_fraction, lp.offered_gbps);
    out += line;
  }
  return out;
}

TEST(Runner, RepeatedValuesIdenticalForAnyJobCount) {
  const auto trial = seeded_scalar();
  const auto serial = run_repeated(trial, 24, RunnerConfig{.jobs = 1});
  const auto four = run_repeated(trial, 24, RunnerConfig{.jobs = 4});
  const auto hw = run_repeated(trial, 24, RunnerConfig{.jobs = hw_jobs()});
  EXPECT_EQ(serial.values, four.values);  // bit-exact, not approximate
  EXPECT_EQ(serial.values, hw.values);
  EXPECT_EQ(serial.mean, four.mean);
  EXPECT_EQ(serial.stddev, four.stddev);
  EXPECT_EQ(serial.ci95_half, four.ci95_half);
}

TEST(Runner, SimEngineTrialsIdenticalForAnyJobCount) {
  // Per-trial Engines share nothing, so concurrent simulations must
  // reproduce the serial run exactly (frame counts and latency medians).
  TrialPlan plan;
  for (std::size_t i = 0; i < 6; ++i) {
    TrialPoint p;
    p.index = i;
    p.seed = i + 1;
    p.load_fraction = 0.1 + 0.1 * static_cast<double>(i);
    p.frame_size = i % 2 == 0 ? 64 : 512;
    plan.points.push_back(p);
  }
  plan.run = sim_trial;
  const auto serial = Runner{RunnerConfig{.jobs = 1}}.run(plan);
  const auto parallel = Runner{RunnerConfig{.jobs = 4}}.run(plan);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].tx_frames, parallel[i].tx_frames) << "trial " << i;
    EXPECT_EQ(serial[i].rx_frames, parallel[i].rx_frames) << "trial " << i;
    EXPECT_EQ(serial[i].metric, parallel[i].metric) << "trial " << i;
  }
}

TEST(Runner, ThroughputSweepByteIdenticalForAnyJobCount) {
  const auto trial = capacity_dut(0.63);
  ThroughputSearchConfig cfg;
  cfg.resolution = 0.002;
  const auto sizes = rfc2544_frame_sizes();
  const auto s1 = render_sweep(
      throughput_sweep(trial, sizes, cfg, RunnerConfig{.jobs = 1}));
  const auto s4 = render_sweep(
      throughput_sweep(trial, sizes, cfg, RunnerConfig{.jobs = 4}));
  const auto shw = render_sweep(
      throughput_sweep(trial, sizes, cfg, RunnerConfig{.jobs = hw_jobs()}));
  EXPECT_EQ(s1, s4);
  EXPECT_EQ(s1, shw);
}

TEST(Runner, LossLadderByteIdenticalForAnyJobCount) {
  const auto trial = capacity_dut(0.8);
  const auto l1 =
      render_ladder(loss_rate_sweep(trial, 256, 1.0, 0.1, RunnerConfig{.jobs = 1}));
  const auto l4 =
      render_ladder(loss_rate_sweep(trial, 256, 1.0, 0.1, RunnerConfig{.jobs = 4}));
  const auto lhw = render_ladder(
      loss_rate_sweep(trial, 256, 1.0, 0.1, RunnerConfig{.jobs = hw_jobs()}));
  EXPECT_EQ(l1, l4);
  EXPECT_EQ(l1, lhw);
}

TEST(Runner, FirstExceptionInPlanOrderPropagates) {
  for (const std::size_t jobs : {std::size_t{1}, std::size_t{4}}) {
    std::atomic<int> attempted{0};
    TrialPlan plan = TrialPlan::repeat(8);
    plan.run = [&attempted](const TrialPoint& p) -> TrialStats {
      attempted.fetch_add(1, std::memory_order_relaxed);
      if (p.seed == 3) throw std::runtime_error("boom3");
      if (p.seed == 5) throw std::runtime_error("boom5");
      return TrialStats{};
    };
    const Runner runner{RunnerConfig{.jobs = jobs}};
    try {
      (void)runner.run(plan);
      FAIL() << "expected an exception (jobs=" << jobs << ")";
    } catch (const std::runtime_error& e) {
      // seed 3 precedes seed 5 in the plan, whichever thread hit it first.
      EXPECT_STREQ(e.what(), "boom3") << "jobs=" << jobs;
    }
    // Every trial was still attempted despite the failures.
    EXPECT_EQ(attempted.load(), 8) << "jobs=" << jobs;
  }
}

TEST(Runner, EmptyPlanAndMissingFunctor) {
  TrialPlan empty;
  empty.run = [](const TrialPoint&) { return TrialStats{}; };
  EXPECT_TRUE(Runner{}.run(empty).empty());
  TrialPlan no_fn = TrialPlan::repeat(2);
  EXPECT_THROW((void)Runner{}.run(no_fn), std::invalid_argument);
}

TEST(Runner, WorkersAreTaggedForTheLogger) {
  EXPECT_EQ(log_worker(), -1);
  std::vector<int> ids(5, -2);
  TrialPlan plan = TrialPlan::repeat(5);
  plan.run = [&ids](const TrialPoint& p) {
    ids[p.index] = log_worker();
    return TrialStats{};
  };
  (void)Runner{RunnerConfig{.jobs = 2}}.run(plan);
  for (const int id : ids) EXPECT_GE(id, 0);
  // The tag is scoped to the pool; the calling thread is restored.
  EXPECT_EQ(log_worker(), -1);
}

TEST(Runner, ResolvedJobs) {
  EXPECT_EQ(RunnerConfig{.jobs = 3}.resolved_jobs(), 3u);
  EXPECT_GE(RunnerConfig{.jobs = 0}.resolved_jobs(), 1u);
}

TEST(Runner, PointIndexFollowsPlanOrder) {
  TrialPlan plan = TrialPlan::repeat(16);
  std::vector<std::uint64_t> seeds(16, 0);
  plan.run = [&seeds](const TrialPoint& p) {
    seeds[p.index] = p.seed;
    TrialStats s;
    s.metric = static_cast<double>(p.index);
    return s;
  };
  const auto out = Runner{RunnerConfig{.jobs = 4}}.run(plan);
  ASSERT_EQ(out.size(), 16u);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].metric, static_cast<double>(i));
    EXPECT_EQ(seeds[i], i + 1);  // run_repeated's historical seed order
  }
}

}  // namespace
}  // namespace osnt::core
