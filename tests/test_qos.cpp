// OpenFlow QoS: enqueue action wire format, queue-config messages, and
// rate-limited egress queues in the switch model.
#include <gtest/gtest.h>

#include "osnt/dut/openflow_switch.hpp"
#include "osnt/oflops/queue_delay.hpp"
#include "osnt/net/builder.hpp"

namespace osnt::openflow {
namespace {

TEST(QosWire, EnqueueActionRoundTrip) {
  FlowMod fm;
  fm.actions = {ActionEnqueue{3, 2}, ActionOutput{1}};
  const Bytes wire = encode(fm, 5);
  // 72-byte flow_mod + 16-byte enqueue + 8-byte output.
  EXPECT_EQ(wire.size(), 72u + 16u + 8u);
  const auto back = decode(ByteSpan{wire.data(), wire.size()});
  ASSERT_TRUE(back);
  const auto& fm2 = std::get<FlowMod>(back->msg);
  ASSERT_EQ(fm2.actions.size(), 2u);
  const auto& enq = std::get<ActionEnqueue>(fm2.actions[0]);
  EXPECT_EQ(enq.port, 3);
  EXPECT_EQ(enq.queue_id, 2u);
}

TEST(QosWire, ActionWireSize) {
  EXPECT_EQ(action_wire_size(Action{ActionOutput{}}), 8u);
  EXPECT_EQ(action_wire_size(Action{ActionEnqueue{}}), 16u);
}

TEST(QosWire, QueueConfigRoundTrip) {
  QueueGetConfigRequest req;
  req.port = 2;
  {
    const Bytes wire = encode(req, 1);
    const auto back = decode(ByteSpan{wire.data(), wire.size()});
    ASSERT_TRUE(back);
    EXPECT_EQ(std::get<QueueGetConfigRequest>(back->msg).port, 2);
  }
  QueueGetConfigReply rep;
  rep.port = 2;
  rep.queues = {{0, 1000}, {1, 500}, {2, 0xFFFF}};
  const Bytes wire = encode(rep, 1);
  const auto back = decode(ByteSpan{wire.data(), wire.size()});
  ASSERT_TRUE(back);
  const auto& r2 = std::get<QueueGetConfigReply>(back->msg);
  EXPECT_EQ(r2.port, 2);
  ASSERT_EQ(r2.queues.size(), 3u);
  EXPECT_EQ(r2.queues[0].min_rate_tenths, 1000);
  EXPECT_EQ(r2.queues[1].min_rate_tenths, 500);
  EXPECT_EQ(r2.queues[2].min_rate_tenths, 0xFFFF);  // property omitted
}

}  // namespace
}  // namespace osnt::openflow

namespace osnt::dut {
namespace {

using namespace osnt::openflow;

net::Packet probe(std::uint32_t dst, std::size_t size = 512) {
  net::PacketBuilder b;
  return b.eth(net::MacAddr::from_index(1), net::MacAddr::from_index(2))
      .ipv4(net::Ipv4Addr::of(10, 0, 0, 1), net::Ipv4Addr{dst},
            net::ipproto::kUdp)
      .udp(1024, 5001)
      .pad_to_frame(size)
      .build();
}

struct QosBench {
  sim::Engine eng;
  ControlChannel chan{eng};
  OpenFlowSwitch sw;
  std::vector<std::unique_ptr<hw::EthPort>> hosts;
  std::vector<Picos> rx_times;
  std::vector<Decoded> ctrl_msgs;

  explicit QosBench(OpenFlowSwitchConfig cfg = OpenFlowSwitchConfig())
      : sw(eng, chan, cfg) {
    for (std::size_t i = 0; i < sw.num_ports(); ++i) {
      hosts.push_back(std::make_unique<hw::EthPort>(eng));
      hw::connect(*hosts[i], sw.port(i));
    }
    hosts[2]->rx().set_handler([this](net::Packet, Picos first, Picos) {
      rx_times.push_back(first);
    });
    chan.controller().set_handler(
        [this](Decoded d) { ctrl_msgs.push_back(std::move(d)); });
  }

  void install(std::uint32_t queue_id) {
    FlowMod fm;
    fm.match = OfMatch::exact_5tuple(0x0A000001, 0x0A000102,
                                     net::ipproto::kUdp, 1024, 5001);
    fm.actions = {ActionEnqueue{3, queue_id}};  // OF port 3 = host index 2
    chan.controller().send(fm);
    eng.run();
  }
};

TEST(QosSwitch, Queue0BehavesLikePlainOutput) {
  QosBench b;
  b.install(0);
  for (int i = 0; i < 10; ++i) (void)b.hosts[0]->tx().transmit(probe(0x0A000102));
  b.eng.run();
  EXPECT_EQ(b.rx_times.size(), 10u);
  EXPECT_EQ(b.sw.frames_shaped(), 0u);
}

TEST(QosSwitch, LowRateQueueSpacesFrames) {
  OpenFlowSwitchConfig cfg;
  cfg.queue_rates = {1.0, 0.1};  // queue 1 = 1 Gb/s
  cfg.latency_jitter_ns = 0;
  QosBench b{cfg};
  b.install(1);
  // Blast 10 back-to-back 512 B frames; the 1 Gb/s shaper spaces them to
  // ~4.26 µs apart even though the wire could carry them 0.43 µs apart.
  for (int i = 0; i < 10; ++i) (void)b.hosts[0]->tx().transmit(probe(0x0A000102));
  b.eng.run();
  ASSERT_EQ(b.rx_times.size(), 10u);
  EXPECT_EQ(b.sw.frames_shaped(), 10u);
  for (std::size_t i = 1; i < b.rx_times.size(); ++i) {
    const double gap_ns = to_nanos(b.rx_times[i] - b.rx_times[i - 1]);
    EXPECT_NEAR(gap_ns, 4256.0, 50.0) << "frame " << i;
  }
}

TEST(QosSwitch, QueuesAreIndependentPerPort) {
  OpenFlowSwitchConfig cfg;
  cfg.queue_rates = {1.0, 0.1};
  QosBench b{cfg};
  // Flow A → queue 1 on port 3; flow B → queue 1 on port 4: different
  // shapers, so B is not delayed behind A's backlog.
  b.install(1);
  FlowMod fm;
  fm.match = OfMatch::exact_5tuple(0x0A000001, 0x0A000103, net::ipproto::kUdp,
                                   1024, 5001);
  fm.actions = {ActionEnqueue{4, 1}};
  b.chan.controller().send(fm);
  b.eng.run();
  Picos b_first = -1;
  b.hosts[3]->rx().set_handler(
      [&](net::Packet, Picos first, Picos) { b_first = first; });
  const Picos t0 = b.eng.now();
  for (int i = 0; i < 10; ++i) (void)b.hosts[0]->tx().transmit(probe(0x0A000102));
  (void)b.hosts[0]->tx().transmit(probe(0x0A000103));
  b.eng.run();
  ASSERT_GT(b_first, 0);
  // B arrives promptly (~µs after its send), not after A's ~40 µs shaped
  // backlog. B is the 11th frame on the ingress wire (~4.7 µs of
  // serialization), then one switch transit.
  EXPECT_LT(to_nanos(b_first - t0), 10'000.0);
}

TEST(QosSwitch, QueueConfigReplyListsQueues) {
  OpenFlowSwitchConfig cfg;
  cfg.queue_rates = {1.0, 0.5, 0.1};
  QosBench b{cfg};
  b.chan.controller().send(QueueGetConfigRequest{2});
  b.eng.run();
  const QueueGetConfigReply* rep = nullptr;
  for (const auto& m : b.ctrl_msgs)
    if (const auto* q = std::get_if<QueueGetConfigReply>(&m.msg)) rep = q;
  ASSERT_NE(rep, nullptr);
  EXPECT_EQ(rep->port, 2);
  ASSERT_EQ(rep->queues.size(), 3u);
  EXPECT_EQ(rep->queues[1].min_rate_tenths, 500);
  EXPECT_EQ(rep->queues[2].min_rate_tenths, 100);
}

TEST(QosSwitch, BadQueueIdDropsFrame) {
  QosBench b;
  FlowMod fm;
  fm.match = OfMatch::exact_5tuple(0x0A000001, 0x0A000102, net::ipproto::kUdp,
                                   1024, 5001);
  fm.actions = {ActionEnqueue{3, 99}};  // queue 99 doesn't exist
  b.chan.controller().send(fm);
  b.eng.run();
  (void)b.hosts[0]->tx().transmit(probe(0x0A000102));
  b.eng.run();
  EXPECT_TRUE(b.rx_times.empty());
}

TEST(QueueDelayModule, MeasuresRateShares) {
  OpenFlowSwitchConfig sw_cfg;
  sw_cfg.queue_rates = {1.0, 0.2};
  sw_cfg.latency_jitter_ns = 0;
  oflops::Testbed tb{sw_cfg};
  oflops::QueueDelayConfig cfg;
  cfg.queue_ids = {0, 1};
  cfg.frames_per_queue = 100;
  cfg.offered_gbps = 4.0;
  oflops::QueueDelayModule mod{cfg};
  const auto rep = tb.ctx.run(mod, 300 * kPicosPerSec);

  double q0 = -1, q1 = -1;
  for (const auto& m : rep.scalars) {
    if (m.name == "q0_achieved_gbps") q0 = m.value;
    if (m.name == "q1_achieved_gbps") q1 = m.value;
  }
  // Queue 0 passes the full 4 Gb/s offer; queue 1 is shaped to ~2 Gb/s.
  EXPECT_NEAR(q0, 4.0, 0.2);
  EXPECT_NEAR(q1, 2.0, 0.15);
  // The shaped queue's latency grows across the burst (queueing ramp).
  for (const auto& [name, d] : rep.distributions) {
    if (name == "q1_latency_us") {
      EXPECT_GT(d.max(), 10.0 * d.min());
    }
    if (name == "q0_latency_us") {
      EXPECT_LT(d.max(), 10.0);  // unshaped: flat ~1 µs
    }
  }
}

}  // namespace
}  // namespace osnt::dut
